//! The execution engine: four priority task slots in front of one
//! accelerator datapath, with the IAU's interrupt machinery.
//!
//! The engine advances a virtual cycle clock instruction by instruction.
//! When a request for a higher-priority slot is observed while a
//! lower-priority task runs, the configured [`InterruptStrategy`] decides
//! how the datapath is handed over:
//!
//! * [`InterruptStrategy::CpuLike`] — finish the in-flight instruction,
//!   then move the *entire* on-chip cache set to DDR (and back on resume);
//! * [`InterruptStrategy::LayerByLayer`] — run to the end of the current
//!   layer; nothing to back up or restore;
//! * [`InterruptStrategy::VirtualInstruction`] — run to the next interrupt
//!   point, materialise its `VIR_SAVE`s (patching the later real `SAVE`s so
//!   no output byte is written twice), and materialise the point's
//!   `VIR_LOAD`s on resume.
//!
//! Every interrupt is probed with the paper's four phases: `t1` (finish
//! current operation), `t2` (backup), `t3` (the high-priority task itself)
//! and `t4` (restore); response latency is `t1 + t2`, extra cost is
//! `t2 + t4` (§IV-B).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::Arc;

use inca_isa::{Instr, Opcode, Program, TaskSlot, TASK_SLOTS};
use inca_obs::{
    ascii, request_span_id, span_id, HostComponent, HostProf, Metrics, SpanStage, TraceEvent,
    Tracer, NO_CORE,
};

use crate::{instr_cycles, AccelConfig, Backend, SimError};

/// How the accelerator hands the datapath to a higher-priority task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum InterruptStrategy {
    /// The native, non-interruptible accelerator (the paper's baseline
    /// motivation): a higher-priority request waits until the running
    /// task finishes its whole network.
    NonPreemptive,
    /// Dump/restore all on-chip caches, like a CPU spilling registers.
    CpuLike,
    /// Switch only at layer boundaries.
    LayerByLayer,
    /// The paper's virtual-instruction method: switch at interrupt points
    /// inside layers.
    VirtualInstruction,
}

impl std::fmt::Display for InterruptStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            InterruptStrategy::NonPreemptive => "non-preemptive",
            InterruptStrategy::CpuLike => "cpu-like",
            InterruptStrategy::LayerByLayer => "layer-by-layer",
            InterruptStrategy::VirtualInstruction => "virtual-instruction",
        })
    }
}

/// Lifecycle of a slot's current job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// No job in flight.
    Idle,
    /// Released, waiting for the datapath.
    Ready,
    /// Executing.
    Running,
    /// Preempted, awaiting resume.
    Preempted,
}

/// Scheduler/lifecycle events, in cycle order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Event {
    /// A job was released into a slot.
    Submitted {
        /// Cycle.
        cycle: u64,
        /// Slot.
        slot: TaskSlot,
    },
    /// A job started for the first time.
    Started {
        /// Cycle.
        cycle: u64,
        /// Slot.
        slot: TaskSlot,
    },
    /// A job was preempted.
    Preempted {
        /// Cycle (end of backup).
        cycle: u64,
        /// The victim.
        slot: TaskSlot,
        /// The winner that requested the datapath.
        by: TaskSlot,
    },
    /// A preempted job resumed.
    Resumed {
        /// Cycle (end of restore).
        cycle: u64,
        /// Slot.
        slot: TaskSlot,
    },
    /// A job finished.
    Completed {
        /// Cycle.
        cycle: u64,
        /// Slot.
        slot: TaskSlot,
    },
}

/// One preemption, probed with the paper's four phases (cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct InterruptEvent {
    /// Cycle the high-priority request was released.
    pub request_cycle: u64,
    /// The preempted (victim) slot.
    pub victim: TaskSlot,
    /// The requesting (winner) slot.
    pub winner: TaskSlot,
    /// Layer of the victim at the moment of the request.
    pub layer: u16,
    /// Victim pc at the moment of the request.
    pub request_pc: u32,
    /// `t1`: cycles to finish the current operation (up to the switch
    /// point the strategy allows).
    pub t1: u64,
    /// `t2`: backup cycles.
    pub t2: u64,
    /// `t4`: restore cycles (0 until the victim resumes).
    pub t4: u64,
    /// Cycle the victim resumed, if it has.
    pub resumed_at: Option<u64>,
}

impl InterruptEvent {
    /// Interrupt response latency `t1 + t2` (paper §IV-B).
    #[must_use]
    pub fn latency(&self) -> u64 {
        self.t1 + self.t2
    }

    /// Extra scheduling cost `t2 + t4` (paper §IV-B).
    #[must_use]
    pub fn cost(&self) -> u64 {
        self.t2 + self.t4
    }
}

/// A completed job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct JobRecord {
    /// Slot.
    pub slot: TaskSlot,
    /// Release cycle.
    pub release: u64,
    /// First-execution cycle.
    pub start: u64,
    /// Completion cycle.
    pub finish: u64,
    /// Cycles spent executing this job's instructions.
    pub busy_cycles: u64,
    /// Extra cycles spent on interrupt backup/restore for this job.
    pub extra_cost_cycles: u64,
    /// Times this job was preempted.
    pub preemptions: u32,
}

impl JobRecord {
    /// Response time (release → finish) in cycles.
    #[must_use]
    pub fn response(&self) -> u64 {
        self.finish - self.release
    }
}

/// Cycle attribution collected when profiling is enabled
/// ([`Engine::set_profiling`]).
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Profile {
    /// Cycles per `(slot index, layer id)`.
    pub per_layer: HashMap<(u8, u16), u64>,
    /// Cycles per opcode (indexed by the order of `Opcode::ALL`).
    pub per_opcode: [u64; 8],
    /// Cycles spent on interrupt backup (`t2`) and restore (`t4`).
    pub interrupt_overhead: u64,
}

impl Profile {
    fn charge(&mut self, slot: TaskSlot, instr: &Instr, cycles: u64) {
        *self.per_layer.entry((slot.index() as u8, instr.layer)).or_insert(0) += cycles;
        let idx = Opcode::ALL.iter().position(|o| *o == instr.op).expect("known opcode");
        self.per_opcode[idx] += cycles;
    }

    /// Cycles attributed to a slot, summed over layers.
    #[must_use]
    pub fn slot_cycles(&self, slot: TaskSlot) -> u64 {
        self.per_layer
            .iter()
            .filter(|((s, _), _)| usize::from(*s) == slot.index())
            .map(|(_, c)| *c)
            .sum()
    }

    /// Layers of a slot ranked by cycles, descending.
    #[must_use]
    pub fn hottest_layers(&self, slot: TaskSlot) -> Vec<(u16, u64)> {
        let mut v: Vec<(u16, u64)> = self
            .per_layer
            .iter()
            .filter(|((s, _), _)| usize::from(*s) == slot.index())
            .map(|((_, l), c)| (*l, *c))
            .collect();
        v.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        v
    }
}

/// Simulation outcome.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Report {
    /// Scheduler events in cycle order.
    pub events: Vec<Event>,
    /// All preemptions with their phase probes.
    pub interrupts: Vec<InterruptEvent>,
    /// Completed jobs in completion order.
    pub completed_jobs: Vec<JobRecord>,
    /// Cycle the simulation stopped at.
    pub final_cycle: u64,
    /// Cycle attribution, when profiling was enabled.
    pub profile: Option<Profile>,
}

impl Report {
    /// Completed jobs of one slot.
    pub fn jobs_of(&self, slot: TaskSlot) -> impl Iterator<Item = &JobRecord> {
        self.completed_jobs.iter().filter(move |j| j.slot == slot)
    }

    /// Per-slot occupancy intervals `(start, end)` derived from the event
    /// log (running between Start/Resume and Preempt/Complete).
    #[must_use]
    pub fn occupancy(&self) -> [Vec<(u64, u64)>; TASK_SLOTS] {
        let mut out: [Vec<(u64, u64)>; TASK_SLOTS] = Default::default();
        let mut open: [Option<u64>; TASK_SLOTS] = [None; TASK_SLOTS];
        for e in &self.events {
            match *e {
                Event::Started { cycle, slot } | Event::Resumed { cycle, slot } => {
                    open[slot.index()] = Some(cycle);
                }
                Event::Preempted { cycle, slot, .. } | Event::Completed { cycle, slot } => {
                    if let Some(s) = open[slot.index()].take() {
                        out[slot.index()].push((s, cycle));
                    }
                }
                Event::Submitted { .. } => {}
            }
        }
        for (i, o) in open.into_iter().enumerate() {
            if let Some(s) = o {
                out[i].push((s, self.final_cycle));
            }
        }
        out
    }

    /// An ASCII Gantt chart of slot occupancy, `width` characters wide.
    /// Each row is one task slot; `#` marks cycles where the slot holds
    /// the datapath. Rendering (and its interval clamping) lives in
    /// `inca_obs::ascii`.
    #[must_use]
    pub fn gantt(&self, width: usize) -> String {
        let width = width.max(10);
        let span = self.final_cycle.max(1);
        let rows: Vec<ascii::TimelineRow> = self
            .occupancy()
            .iter()
            .enumerate()
            .map(|(i, intervals)| {
                let preemptions =
                    self.interrupts.iter().filter(|ev| ev.victim.index() == i).count();
                ascii::TimelineRow::new(
                    format!("slot{i}"),
                    intervals.clone(),
                    format!("{preemptions:>6} preemptions"),
                )
            })
            .collect();
        ascii::render(&rows, span, width)
    }
}

#[derive(Debug)]
struct ActiveJob {
    release: u64,
    start: Option<u64>,
    pc: usize,
    /// IAU `InputOffset` register: shifts loads from the network-input
    /// region (lets software point the same program at another frame).
    input_offset: u64,
    /// IAU `OutputOffset` register: shifts saves to the designated-output
    /// region.
    output_offset: u64,
    /// `save_id -> absolute end channel` already flushed by `VIR_SAVE`s.
    flushed: HashMap<u32, u16>,
    resume_loads: Vec<Instr>,
    needs_cpu_restore: bool,
    preempted: bool,
    preemptions: u32,
    busy_cycles: u64,
    extra_cost_cycles: u64,
    last_interrupt: Option<usize>,
    /// Compute cycles accumulated since the last transfer, available to
    /// hide DMA under when `AccelConfig::dma_overlap` is set.
    dma_credit: u64,
    /// Request tag for causal-span emission (`RequestId::raw`); untagged
    /// jobs emit no spans (DESIGN.md §5.7).
    tag: Option<u64>,
    /// Open Exec segment: `(start cycle, span id)`.
    exec_open: Option<(u64, u64)>,
    /// Open Layer span: `(layer id, start cycle)`.
    layer_open: Option<(u16, u64)>,
    /// Pause cycle of the pending Preempted span (closed at resume).
    preempt_pause: Option<u64>,
    /// Per-stage span sequence counters (deterministic span ids).
    exec_seq: u32,
    preempt_seq: u32,
    layer_seq: u32,
}

impl ActiveJob {
    fn with_offsets(release: u64, input_offset: u64, output_offset: u64, tag: Option<u64>) -> Self {
        Self {
            release,
            start: None,
            pc: 0,
            input_offset,
            output_offset,
            flushed: HashMap::new(),
            resume_loads: Vec::new(),
            needs_cpu_restore: false,
            preempted: false,
            preemptions: 0,
            busy_cycles: 0,
            extra_cost_cycles: 0,
            last_interrupt: None,
            dma_credit: 0,
            tag,
            exec_open: None,
            layer_open: None,
            preempt_pause: None,
            exec_seq: 0,
            preempt_seq: 0,
            layer_seq: 0,
        }
    }
}

/// Cheap always-on event counters (plain `u64` adds on the hot path;
/// the structured [`Metrics`] view is built on demand).
#[derive(Debug, Default)]
struct ObsCounters {
    instrs_retired: u64,
    vis_materialized: u64,
    saves_patched: u64,
    saves_elided: u64,
}

#[derive(Debug, Default)]
struct Slot {
    program: Option<Arc<Program>>,
    job: Option<ActiveJob>,
    /// Queued jobs: (release, input offset, output offset, span tag).
    backlog: VecDeque<(u64, u64, u64, Option<u64>)>,
    auto_resubmit: bool,
}

/// Applies the IAU's per-job `InputOffset`/`OutputOffset` registers to an
/// instruction's DDR address: loads from the network-input region and
/// saves to the designated-output region are shifted.
fn apply_job_offsets(program: &Program, in_off: u64, out_off: u64, instr: &mut Instr) {
    if in_off == 0 && out_off == 0 {
        return;
    }
    let len = u64::from(instr.ddr.bytes);
    match instr.op {
        Opcode::LoadD | Opcode::VirLoadD if program.memory.in_input_region(instr.ddr.addr, len) => {
            instr.ddr.addr += in_off;
        }
        Opcode::Save | Opcode::VirSave if program.memory.in_output_region(instr.ddr.addr, len) => {
            instr.ddr.addr += out_off;
        }
        _ => {}
    }
}

/// The accelerator engine: four priority task slots in front of one
/// datapath (see the module-level documentation at the top of this file).
#[derive(Debug)]
pub struct Engine<B: Backend> {
    cfg: AccelConfig,
    strategy: InterruptStrategy,
    backend: B,
    slots: [Slot; TASK_SLOTS],
    now: u64,
    arrivals: BinaryHeap<Reverse<(u64, u64, u8)>>,
    arrival_offsets: HashMap<u64, (u64, u64, Option<u64>)>,
    seq: u64,
    running: Option<TaskSlot>,
    events: Vec<Event>,
    interrupts: Vec<InterruptEvent>,
    completed: Vec<JobRecord>,
    profile: Option<Profile>,
    tracer: Tracer,
    counters: ObsCounters,
    /// Core id stamped on emitted spans ([`NO_CORE`] outside a pool).
    span_core: u32,
    /// Runtime-gated host self-profiling (wall clock; never feeds
    /// deterministic outputs).
    host_prof: Option<HostProf>,
}

impl<B: Backend> Engine<B> {
    /// Creates an engine.
    #[must_use]
    pub fn new(cfg: AccelConfig, strategy: InterruptStrategy, backend: B) -> Self {
        Self {
            cfg,
            strategy,
            backend,
            slots: Default::default(),
            now: 0,
            arrivals: BinaryHeap::new(),
            arrival_offsets: HashMap::new(),
            seq: 0,
            running: None,
            events: Vec::new(),
            interrupts: Vec::new(),
            completed: Vec::new(),
            profile: None,
            tracer: Tracer::disabled(),
            counters: ObsCounters::default(),
            span_core: NO_CORE,
            host_prof: None,
        }
    }

    /// Sets the core id stamped on spans this engine emits (a pool sets
    /// each core's engine once at construction).
    pub fn set_span_core(&mut self, core: u32) {
        self.span_core = core;
    }

    /// Installs (or removes) the host self-profiler. Profiling costs one
    /// `Instant::now` pair per engine advance when installed and one
    /// discriminant check when not; it never changes deterministic
    /// outputs.
    pub fn set_host_prof(&mut self, prof: Option<HostProf>) {
        self.host_prof = prof;
    }

    /// Emits one causal span through the tracer (no-op when disabled).
    #[allow(clippy::too_many_arguments)]
    fn emit_span(
        &self,
        tag: u64,
        stage: SpanStage,
        seq: u32,
        parent: u64,
        start: u64,
        end: u64,
        detail: u64,
    ) {
        let core = self.span_core;
        self.tracer.emit(|| TraceEvent::Span {
            id: span_id(tag, stage, seq),
            parent,
            request: tag,
            stage,
            start,
            end,
            core,
            detail,
        });
    }

    /// Installs the tracer the engine emits [`TraceEvent`]s through. The
    /// default is [`Tracer::disabled`], which costs one discriminant check
    /// per emission site. An enabled tracer immediately receives one
    /// [`TraceEvent::EngineMeta`] naming the interrupt strategy and clock,
    /// so recorded traces are self-describing for the analysis layer.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
        self.tracer.emit(|| TraceEvent::EngineMeta {
            cycle: self.now,
            strategy: self.strategy.to_string(),
            clock_hz: self.cfg.clock_hz,
        });
    }

    /// The installed tracer.
    #[must_use]
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// A deterministic metrics snapshot of everything observed so far.
    /// Keys are prefixed `engine.`; histograms use the fixed
    /// `inca_obs::CYCLE_BUCKETS` ladder.
    #[must_use]
    pub fn metrics(&self) -> Metrics {
        let mut m = Metrics::new();
        m.inc("engine.cycles", self.now);
        m.inc("engine.instrs.retired", self.counters.instrs_retired);
        m.inc("engine.instrs.vi_materialized", self.counters.vis_materialized);
        m.inc("engine.saves.patched", self.counters.saves_patched);
        m.inc("engine.saves.elided", self.counters.saves_elided);
        m.inc("engine.jobs.completed", self.completed.len() as u64);
        m.inc(
            "engine.jobs.preempted",
            self.events.iter().filter(|e| matches!(e, Event::Preempted { .. })).count() as u64,
        );
        m.inc("engine.interrupts.probed", self.interrupts.len() as u64);
        let mut busy = 0u64;
        for j in &self.completed {
            busy += j.busy_cycles;
            m.observe("engine.job.response_cycles", j.response());
            m.observe("engine.job.busy_cycles", j.busy_cycles);
        }
        for i in &self.interrupts {
            m.observe("engine.interrupt.latency_cycles", i.latency());
            m.observe("engine.interrupt.cost_cycles", i.cost());
        }
        if self.now > 0 {
            m.set_gauge("engine.utilization", busy as f64 / self.now as f64);
        }
        m
    }

    /// Enables or disables per-layer/per-opcode cycle attribution (small
    /// per-instruction overhead; off by default).
    pub fn set_profiling(&mut self, enabled: bool) {
        self.profile = if enabled { Some(Profile::default()) } else { None };
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &AccelConfig {
        &self.cfg
    }

    /// The strategy in use.
    #[must_use]
    pub fn strategy(&self) -> InterruptStrategy {
        self.strategy
    }

    /// Current virtual cycle.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The next cycle this engine can make progress, or `None` when it is
    /// quiescent: no running job, no ready/preempted job in any slot, no
    /// pending arrival. Advancing a quiescent engine is a state no-op,
    /// which is what lets the event engine skip it entirely
    /// ([`CorePool`](crate::CorePool) in
    /// [`AdvanceMode::EventDriven`](crate::AdvanceMode)).
    ///
    /// With work in a slot the answer is the current cycle; otherwise it
    /// is the earliest pending arrival (which may lie in the past for a
    /// late-submitted request — the value orders wakes, it does not gate
    /// them).
    #[must_use]
    pub fn next_event(&self) -> Option<u64> {
        if self.running.is_some() || self.best_ready().is_some() {
            return Some(self.now);
        }
        self.arrivals.peek().map(|&Reverse((t, _, _))| t)
    }

    /// The completed-job log, oldest first — the allocation-free way to
    /// drain completions incrementally (drivers keep a cursor into this
    /// slice instead of cloning the full [`Report`] per advance).
    #[must_use]
    pub fn completed_jobs(&self) -> &[JobRecord] {
        &self.completed
    }

    /// Access to the backend (e.g. to install or inspect DDR images).
    #[must_use]
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// Backend accessor.
    #[must_use]
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Installs `program` in `slot` (replacing any previous program; the
    /// slot must be idle). Accepts `Program` or a shared `Arc<Program>` —
    /// share the `Arc` when loading one large program into many engines.
    ///
    /// # Errors
    ///
    /// [`SimError::Engine`] when the slot has a job in flight.
    pub fn load(
        &mut self,
        slot: TaskSlot,
        program: impl Into<Arc<Program>>,
    ) -> Result<(), SimError> {
        let s = &mut self.slots[slot.index()];
        if s.job.is_some() {
            return Err(SimError::Engine(format!("{slot} has a job in flight")));
        }
        let program = program.into();
        // A same-slot reload keeps ownership, so the backend's on_switch
        // clear never fires — it must invalidate the slot's staged
        // buffers here or the new program would read the old one's.
        let reloaded = s.program.as_ref().is_none_or(|p| !Arc::ptr_eq(p, &program));
        s.program = Some(program);
        if reloaded {
            self.backend.on_load(slot);
        }
        Ok(())
    }

    /// The program currently loaded in `slot`, if any (shared handle; a
    /// slot-virtualizing scheduler uses this to detect reload-free
    /// rebinds).
    #[must_use]
    pub fn loaded_program(&self, slot: TaskSlot) -> Option<&Arc<Program>> {
        self.slots[slot.index()].program.as_ref()
    }

    /// State of a slot.
    #[must_use]
    pub fn task_state(&self, slot: TaskSlot) -> TaskState {
        let s = &self.slots[slot.index()];
        match &s.job {
            None => TaskState::Idle,
            Some(j) if self.running == Some(slot) => {
                debug_assert!(!j.preempted);
                TaskState::Running
            }
            Some(j) if j.preempted => TaskState::Preempted,
            Some(_) => TaskState::Ready,
        }
    }

    /// When a job of `slot` completes, immediately release the next one.
    pub fn set_auto_resubmit(&mut self, slot: TaskSlot, enabled: bool) {
        self.slots[slot.index()].auto_resubmit = enabled;
    }

    /// Schedules an execution request for `slot` at `cycle`.
    ///
    /// # Errors
    ///
    /// [`SimError::EmptySlot`] when no program is loaded.
    pub fn request_at(&mut self, cycle: u64, slot: TaskSlot) -> Result<(), SimError> {
        self.request_job(cycle, slot, 0, 0)
    }

    /// Like [`Engine::request_at`], additionally programming the IAU's
    /// per-job `InputOffset`/`OutputOffset` registers: loads from the
    /// program's network-input region and saves to its designated-output
    /// region are shifted by the given byte offsets, so software can run
    /// the same program against different frame buffers.
    ///
    /// # Errors
    ///
    /// [`SimError::EmptySlot`] when no program is loaded.
    pub fn request_job(
        &mut self,
        cycle: u64,
        slot: TaskSlot,
        input_offset: u64,
        output_offset: u64,
    ) -> Result<(), SimError> {
        self.request_job_tagged(cycle, slot, input_offset, output_offset, None)
    }

    /// Like [`Engine::request_job`], additionally carrying a request tag:
    /// the job emits causal [`TraceEvent::Span`]s (Exec / Preempted /
    /// Layer) attributed to that request. Untagged jobs emit none, so
    /// legacy traces stay byte-identical.
    ///
    /// # Errors
    ///
    /// [`SimError::EmptySlot`] when no program is loaded.
    pub fn request_job_tagged(
        &mut self,
        cycle: u64,
        slot: TaskSlot,
        input_offset: u64,
        output_offset: u64,
        tag: Option<u64>,
    ) -> Result<(), SimError> {
        if self.slots[slot.index()].program.is_none() {
            return Err(SimError::EmptySlot(slot));
        }
        self.arrivals.push(Reverse((cycle, self.seq, slot.index() as u8)));
        self.arrival_offsets.insert(self.seq, (input_offset, output_offset, tag));
        self.seq += 1;
        Ok(())
    }

    fn release_due(&mut self) {
        while let Some(&Reverse((t, seq, s))) = self.arrivals.peek() {
            if t > self.now {
                break;
            }
            self.arrivals.pop();
            let (in_off, out_off, tag) = self.arrival_offsets.remove(&seq).unwrap_or((0, 0, None));
            let slot = TaskSlot::new(s).expect("slot validated at request");
            let st = &mut self.slots[usize::from(s)];
            if st.job.is_none() {
                st.job = Some(ActiveJob::with_offsets(t, in_off, out_off, tag));
            } else {
                st.backlog.push_back((t, in_off, out_off, tag));
            }
            self.events.push(Event::Submitted { cycle: t, slot });
            self.tracer.emit(|| TraceEvent::JobReleased { cycle: t, slot });
        }
    }

    fn best_ready(&self) -> Option<TaskSlot> {
        TaskSlot::all().find(|s| self.slots[s.index()].job.is_some())
    }

    /// Executes one *original* instruction at the victim's pc (virtual
    /// instructions are skipped for free, SAVE patches applied), advancing
    /// the clock. Returns `true` when the job's stream is exhausted.
    fn exec_step(&mut self, slot: TaskSlot) -> Result<bool, SimError> {
        let program = Arc::clone(
            self.slots[slot.index()].program.as_ref().expect("running slot has program"),
        );
        // Skip virtual groups (the IAU discards them in normal flow).
        {
            let job = self.slots[slot.index()].job.as_mut().expect("running slot has job");
            while job.pc < program.instrs.len() && program.instrs[job.pc].op.is_virtual() {
                job.pc += 1;
            }
            if job.pc >= program.instrs.len() {
                return Ok(true);
            }
        }
        let pc = self.slots[slot.index()].job.as_ref().expect("job").pc;
        let mut instr = program.instrs[pc];
        let mut skip = false;
        let mut patched = false;
        if instr.op == Opcode::Save {
            let job = self.slots[slot.index()].job.as_mut().expect("job");
            if let Some(&flushed_end) = job.flushed.get(&instr.save_id) {
                patched = true;
                let meta = program.layer_of(&instr);
                let plane = u64::from(meta.out_shape.h) * u64::from(meta.out_shape.w);
                let c0 = instr.tile.c0;
                let end = c0 + instr.tile.chans;
                let new_c0 = flushed_end.max(c0).min(end);
                let cut = u32::from(new_c0 - c0);
                if new_c0 >= end {
                    skip = true;
                } else {
                    instr.tile.c0 = new_c0;
                    instr.tile.chans = end - new_c0;
                    instr.ddr.addr += u64::from(cut) * plane;
                    instr.ddr.bytes -= cut * u32::from(instr.tile.rows) * meta.out_shape.w;
                }
                job.flushed.remove(&instr.save_id);
            }
        }
        if patched {
            self.counters.saves_patched += 1;
            if skip {
                self.counters.saves_elided += 1;
            }
            let (cycle, save_id, elided) = (self.now, instr.save_id, skip);
            self.tracer.emit(|| TraceEvent::SavePatched { cycle, slot, save_id, elided });
        }
        {
            let job = self.slots[slot.index()].job.as_ref().expect("job");
            apply_job_offsets(&program, job.input_offset, job.output_offset, &mut instr);
        }
        let mut cycles = if skip {
            0
        } else {
            self.backend.execute(slot, &program, &instr)?;
            instr_cycles(&self.cfg, program.layer_of(&instr), &instr)
        };
        if self.cfg.dma_overlap {
            let job = self.slots[slot.index()].job.as_mut().expect("job");
            if instr.op.is_calc() {
                job.dma_credit = job.dma_credit.saturating_add(cycles);
            } else {
                let hidden = cycles.min(job.dma_credit);
                job.dma_credit -= hidden;
                cycles -= hidden;
            }
        }
        let start = self.now;
        self.now += cycles;
        if !skip {
            self.counters.instrs_retired += 1;
            let (op, layer) = (instr.op, instr.layer);
            self.tracer.emit(|| TraceEvent::InstrRetired { start, cycles, slot, op, layer });
        }
        if let Some(p) = self.profile.as_mut() {
            p.charge(slot, &instr, cycles);
        }
        let mut layer_span = None;
        let done = {
            let job = self.slots[slot.index()].job.as_mut().expect("job");
            job.busy_cycles += cycles;
            job.pc += 1;
            if let Some(tag) = job.tag {
                if job.layer_open.is_none() {
                    job.layer_open = Some((instr.layer, start));
                }
                // The Layer span closes at the layer's last retiring
                // instruction (peeking past free virtual groups), so the
                // emission position matches a Tier-1 committed batch.
                let mut next = job.pc;
                while next < program.instrs.len() && program.instrs[next].op.is_virtual() {
                    next += 1;
                }
                if next >= program.instrs.len() || program.instrs[next].layer != instr.layer {
                    let (layer, ls) = job.layer_open.take().expect("layer opened above");
                    let parent = job.exec_open.map_or(request_span_id(tag), |(_, id)| id);
                    layer_span = Some((tag, job.layer_seq, parent, ls, u64::from(layer)));
                    job.layer_seq += 1;
                }
            }
            job.pc >= program.instrs.len()
        };
        if let Some((tag, seq, parent, ls, layer)) = layer_span {
            self.emit_span(tag, SpanStage::Layer, seq, parent, ls, self.now, layer);
        }
        Ok(done)
    }

    /// Attempts to retire the whole layer at the victim's pc as one fused
    /// Tier-1 span (see DESIGN.md §5.6).
    ///
    /// Returns `Ok(None)` to fall back to [`Engine::exec_step`] — always
    /// safe — and `Ok(Some(done))` after a committed batch whose cycle
    /// accounting (clock, per-instruction trace, profile, DMA-overlap
    /// credit) is identical to stepping the span. A batch is attempted
    /// only when stepping the span could not observe an intervening
    /// event: the pc sits exactly at a layer start with no pending SAVE
    /// patches, and every instruction would start before the deadline and
    /// before the earliest pending arrival.
    fn try_exec_layer(&mut self, slot: TaskSlot, deadline: u64) -> Result<Option<bool>, SimError> {
        if !self.backend.supports_spans() {
            return Ok(None);
        }
        let program = Arc::clone(
            self.slots[slot.index()].program.as_ref().expect("running slot has program"),
        );
        let job = self.slots[slot.index()].job.as_ref().expect("running slot has job");
        if !job.flushed.is_empty() {
            // Stepping applies SAVE patches instruction by instruction;
            // never batch across pending ones.
            return Ok(None);
        }
        let (in_off, out_off) = (job.input_offset, job.output_offset);
        // Effective pc after the free virtual skip, computed without
        // mutating the job (exec_step does its own skip when we decline).
        let mut pc0 = job.pc;
        while pc0 < program.instrs.len() && program.instrs[pc0].op.is_virtual() {
            pc0 += 1;
        }
        if pc0 >= program.instrs.len() {
            return Ok(None);
        }
        let range = program.layer_pc_range(program.instrs[pc0].layer);
        if range.start != pc0 || range.end > program.instrs.len() {
            return Ok(None); // mid-layer (e.g. resumed after a preemption)
        }
        // Dry-run the span's timing. The first step starts at `self.now`,
        // which the caller already checked against deadline and arrivals.
        let barrier = deadline.min(self.arrivals.peek().map_or(u64::MAX, |&Reverse((t, _, _))| t));
        let mut sim_now = self.now;
        let mut sim_credit = job.dma_credit;
        let mut last_original = pc0;
        let mut steps: Vec<(usize, u64, u64)> = Vec::new(); // (pc, start, cycles)
        for pc in range.clone() {
            let instr = &program.instrs[pc];
            if instr.op.is_virtual() {
                continue;
            }
            if !steps.is_empty() && sim_now >= barrier {
                return Ok(None);
            }
            last_original = pc;
            let mut cycles = instr_cycles(&self.cfg, program.layer_of(instr), instr);
            if self.cfg.dma_overlap {
                if instr.op.is_calc() {
                    sim_credit = sim_credit.saturating_add(cycles);
                } else {
                    let hidden = cycles.min(sim_credit);
                    sim_credit -= hidden;
                    cycles -= hidden;
                }
            }
            steps.push((pc, sim_now, cycles));
            sim_now += cycles;
        }
        if steps.is_empty() {
            return Ok(None);
        }
        if !self.backend.execute_span(slot, &program, range, in_off, out_off)? {
            return Ok(None);
        }
        // Commit: byte-identical bookkeeping to stepping the span.
        let total = sim_now - self.now;
        for &(pc, start, cycles) in &steps {
            let instr = &program.instrs[pc];
            self.counters.instrs_retired += 1;
            let (op, layer) = (instr.op, instr.layer);
            self.tracer.emit(|| TraceEvent::InstrRetired { start, cycles, slot, op, layer });
            if let Some(p) = self.profile.as_mut() {
                p.charge(slot, instr, cycles);
            }
        }
        let batch_start = self.now;
        self.now = sim_now;
        let mut layer_span = None;
        let done = {
            let job = self.slots[slot.index()].job.as_mut().expect("job");
            job.busy_cycles += total;
            job.dma_credit = sim_credit;
            // Trailing virtual groups are skipped for free by the next step,
            // exactly as stepping would after its last original instruction.
            job.pc = last_original + 1;
            if let Some(tag) = job.tag {
                // Same stream position as stepping: the Layer span follows
                // the layer's last InstrRetired (batching never starts
                // mid-layer, so no span is open here).
                debug_assert!(job.layer_open.is_none());
                let parent = job.exec_open.map_or(request_span_id(tag), |(_, id)| id);
                let layer = u64::from(program.instrs[pc0].layer);
                layer_span = Some((tag, job.layer_seq, parent, layer));
                job.layer_seq += 1;
            }
            job.pc >= program.instrs.len()
        };
        if let Some((tag, seq, parent, layer)) = layer_span {
            self.emit_span(tag, SpanStage::Layer, seq, parent, batch_start, sim_now, layer);
        }
        Ok(Some(done))
    }

    fn complete_job(&mut self, slot: TaskSlot) {
        let s = &mut self.slots[slot.index()];
        let job = s.job.take().expect("completing job exists");
        self.completed.push(JobRecord {
            slot,
            release: job.release,
            start: job.start.unwrap_or(job.release),
            finish: self.now,
            busy_cycles: job.busy_cycles,
            extra_cost_cycles: job.extra_cost_cycles,
            preemptions: job.preemptions,
        });
        self.events.push(Event::Completed { cycle: self.now, slot });
        if let Some(tag) = job.tag {
            // Close the job's open spans at the completion cycle (a
            // VI point that closes the program can leave a layer open).
            if let Some((layer, ls)) = job.layer_open {
                let parent = job.exec_open.map_or(request_span_id(tag), |(_, id)| id);
                self.emit_span(
                    tag,
                    SpanStage::Layer,
                    job.layer_seq,
                    parent,
                    ls,
                    self.now,
                    u64::from(layer),
                );
            }
            if let Some((es, id)) = job.exec_open {
                let core = self.span_core;
                let (start, end, request) = (es, self.now, tag);
                self.tracer.emit(|| TraceEvent::Span {
                    id,
                    parent: request_span_id(request),
                    request,
                    stage: SpanStage::Exec,
                    start,
                    end,
                    core,
                    detail: slot.index() as u64,
                });
            }
        }
        {
            let (cycle, busy_cycles, preemptions) = (self.now, job.busy_cycles, job.preemptions);
            self.tracer.emit(|| TraceEvent::JobFinished { cycle, slot, busy_cycles, preemptions });
        }
        let s = &mut self.slots[slot.index()];
        if let Some((next, in_off, out_off, tag)) = s.backlog.pop_front() {
            s.job = Some(ActiveJob::with_offsets(next, in_off, out_off, tag));
        } else if s.auto_resubmit {
            // Auto-resubmission reuses the completed job's offsets (the
            // new job is a fresh, untagged release).
            s.job =
                Some(ActiveJob::with_offsets(self.now, job.input_offset, job.output_offset, None));
            self.events.push(Event::Submitted { cycle: self.now, slot });
            let cycle = self.now;
            self.tracer.emit(|| TraceEvent::JobReleased { cycle, slot });
        }
        if self.running == Some(slot) {
            self.running = None;
        }
    }

    /// Starts or resumes `slot` on the datapath.
    fn dispatch(&mut self, slot: TaskSlot) -> Result<(), SimError> {
        self.backend.on_switch(slot);
        let program = Arc::clone(self.slots[slot.index()].program.as_ref().expect("program"));
        let job = self.slots[slot.index()].job.as_mut().expect("dispatching job exists");
        if job.start.is_none() {
            job.start = Some(self.now);
            self.events.push(Event::Started { cycle: self.now, slot });
            let cycle = self.now;
            self.tracer.emit(|| TraceEvent::JobStarted { cycle, slot });
        }
        if job.preempted {
            let restore_start = self.now;
            let mut t4 = 0u64;
            if job.needs_cpu_restore {
                job.needs_cpu_restore = false;
                t4 = self.cfg.dma_cycles(u64::from(self.cfg.arch.onchip_bytes()));
                self.backend.restore(slot)?;
            }
            let mut loads = std::mem::take(&mut job.resume_loads);
            let (in_off, out_off) = (job.input_offset, job.output_offset);
            let last_interrupt = job.last_interrupt.take();
            job.preempted = false;
            job.dma_credit = 0; // the double-buffer pipeline restarts cold
            for l in &mut loads {
                apply_job_offsets(&program, in_off, out_off, l);
            }
            for l in &loads {
                self.backend.execute(slot, &program, l)?;
                let c = instr_cycles(&self.cfg, program.layer_of(l), l);
                self.counters.vis_materialized += 1;
                {
                    let (start, cycles, op, layer) = (restore_start + t4, c, l.op, l.layer);
                    self.tracer.emit(|| TraceEvent::ViMaterialized {
                        start,
                        cycles,
                        slot,
                        op,
                        layer,
                    });
                }
                t4 += c;
                if let Some(p) = self.profile.as_mut() {
                    p.charge(slot, l, c);
                }
            }
            self.now += t4;
            if let Some(p) = self.profile.as_mut() {
                p.interrupt_overhead += t4;
            }
            let job = self.slots[slot.index()].job.as_mut().expect("job");
            job.extra_cost_cycles += t4;
            if let Some(idx) = last_interrupt {
                self.interrupts[idx].t4 = t4;
                self.interrupts[idx].resumed_at = Some(self.now);
            }
            self.events.push(Event::Resumed { cycle: self.now, slot });
            self.tracer.emit(|| TraceEvent::Resumed { slot, restore_start, t4 });
        }
        // Close the request's pending Preempted span and open its next
        // Exec segment at the cycle execution actually (re)starts.
        let mut preempted_span = None;
        {
            let job = self.slots[slot.index()].job.as_mut().expect("dispatching job exists");
            if let Some(tag) = job.tag {
                if let Some(pause) = job.preempt_pause.take() {
                    preempted_span = Some((tag, job.preempt_seq, pause));
                    job.preempt_seq += 1;
                }
                if job.exec_open.is_none() {
                    let id = span_id(tag, SpanStage::Exec, job.exec_seq);
                    job.exec_seq += 1;
                    job.exec_open = Some((self.now, id));
                }
            }
        }
        if let Some((tag, seq, pause)) = preempted_span {
            self.emit_span(
                tag,
                SpanStage::Preempted,
                seq,
                request_span_id(tag),
                pause,
                self.now,
                0,
            );
        }
        self.running = Some(slot);
        Ok(())
    }

    /// Preempts `victim` in favour of `winner` per the strategy.
    fn preempt(&mut self, victim: TaskSlot, winner: TaskSlot) -> Result<(), SimError> {
        let program =
            Arc::clone(self.slots[victim.index()].program.as_ref().expect("victim has program"));
        let request_cycle =
            self.slots[winner.index()].job.as_ref().expect("winner has job").release;
        let request_pc = self.slots[victim.index()].job.as_ref().expect("victim job").pc as u32;
        let request_layer = program.instrs.get(request_pc as usize).map_or(0, |i| i.layer);

        let mut t2 = 0u64;
        let finished = match self.strategy {
            InterruptStrategy::NonPreemptive => {
                // Run the victim's whole remaining program.
                loop {
                    if self.exec_step(victim)? {
                        break true;
                    }
                }
            }
            InterruptStrategy::CpuLike => {
                // The in-flight instruction already completed (the engine
                // only observes requests at instruction boundaries).
                t2 = self.cfg.dma_cycles(u64::from(self.cfg.arch.onchip_bytes()));
                self.now += t2;
                self.backend.snapshot(victim);
                let job = self.slots[victim.index()].job.as_mut().expect("job");
                job.needs_cpu_restore = true;
                false
            }
            InterruptStrategy::LayerByLayer => {
                let layer = request_layer;
                loop {
                    // Next original pc (virtual instructions are free).
                    let next = {
                        let job = self.slots[victim.index()].job.as_ref().expect("job");
                        let mut pc = job.pc;
                        while pc < program.instrs.len() && program.instrs[pc].op.is_virtual() {
                            pc += 1;
                        }
                        pc
                    };
                    if next >= program.instrs.len() {
                        break true; // finished the whole program while draining
                    }
                    if program.instrs[next].layer != layer {
                        break false; // reached the layer boundary
                    }
                    if self.exec_step(victim)? {
                        break true;
                    }
                }
            }
            InterruptStrategy::VirtualInstruction => {
                let point = {
                    let job = self.slots[victim.index()].job.as_ref().expect("job");
                    program.next_interrupt_point(job.pc).copied()
                };
                match point {
                    None => {
                        // No point ahead: run to completion.
                        loop {
                            if self.exec_step(victim)? {
                                break true;
                            }
                        }
                    }
                    Some(p) => {
                        // t1: finish up to the point.
                        loop {
                            let at_point = {
                                let job = self.slots[victim.index()].job.as_ref().expect("job");
                                job.pc >= p.vir_start as usize
                            };
                            if at_point {
                                break;
                            }
                            if self.exec_step(victim)? {
                                break;
                            }
                        }
                        {
                            // t2: materialise the point's VIR_SAVEs.
                            let t2_base = self.now;
                            let mut resume_loads = Vec::new();
                            for idx in p.vir_range() {
                                let mut vi = program.instrs[idx];
                                {
                                    let job = self.slots[victim.index()].job.as_ref().expect("job");
                                    apply_job_offsets(
                                        &program,
                                        job.input_offset,
                                        job.output_offset,
                                        &mut vi,
                                    );
                                }
                                match vi.op {
                                    Opcode::VirSave => {
                                        let already = self.slots[victim.index()]
                                            .job
                                            .as_ref()
                                            .expect("job")
                                            .flushed
                                            .get(&vi.save_id)
                                            .copied()
                                            .unwrap_or(0);
                                        let end = vi.tile.c0 + vi.tile.chans;
                                        if end <= already {
                                            continue;
                                        }
                                        self.backend.execute(victim, &program, &vi)?;
                                        let c = instr_cycles(&self.cfg, program.layer_of(&vi), &vi);
                                        self.counters.vis_materialized += 1;
                                        {
                                            let (start, cycles, op, layer) =
                                                (t2_base + t2, c, vi.op, vi.layer);
                                            self.tracer.emit(|| TraceEvent::ViMaterialized {
                                                start,
                                                cycles,
                                                slot: victim,
                                                op,
                                                layer,
                                            });
                                        }
                                        t2 += c;
                                        if let Some(p) = self.profile.as_mut() {
                                            p.charge(victim, &vi, c);
                                        }
                                        self.slots[victim.index()]
                                            .job
                                            .as_mut()
                                            .expect("job")
                                            .flushed
                                            .insert(vi.save_id, end);
                                    }
                                    Opcode::VirLoadD | Opcode::VirLoadW => {
                                        resume_loads.push(vi);
                                    }
                                    other => {
                                        return Err(SimError::Engine(format!(
                                            "non-virtual {other} inside interrupt point"
                                        )))
                                    }
                                }
                            }
                            self.now += t2;
                            let job = self.slots[victim.index()].job.as_mut().expect("job");
                            job.pc = p.resume_pc() as usize;
                            if job.pc >= program.instrs.len() {
                                // The point closed the program: complete.
                                true
                            } else {
                                job.resume_loads = resume_loads;
                                false
                            }
                        }
                    }
                }
            }
        };

        let t1 = self.now.saturating_sub(request_cycle).saturating_sub(t2);
        if finished {
            self.complete_job(victim);
            // Completion, not preemption: still record the latency the
            // winner observed, with no restore to come.
            self.interrupts.push(InterruptEvent {
                request_cycle,
                victim,
                winner,
                layer: request_layer,
                request_pc,
                t1,
                t2,
                t4: 0,
                resumed_at: None,
            });
            return Ok(());
        }

        if let Some(p) = self.profile.as_mut() {
            p.interrupt_overhead += t2;
        }
        // The victim stops executing where t1 ended; backup (t2) counts as
        // preempted-out time, so the Exec segment closes at `now − t2`.
        let pause = self.now.saturating_sub(t2);
        let mut layer_span = None;
        let mut exec_span = None;
        let job = self.slots[victim.index()].job.as_mut().expect("job");
        job.preempted = true;
        job.preemptions += 1;
        job.extra_cost_cycles += t2;
        job.last_interrupt = Some(self.interrupts.len());
        if let Some(tag) = job.tag {
            if let Some((layer, ls)) = job.layer_open.take() {
                let parent = job.exec_open.map_or(request_span_id(tag), |(_, id)| id);
                layer_span = Some((tag, job.layer_seq, parent, ls, u64::from(layer)));
                job.layer_seq += 1;
            }
            if let Some((es, id)) = job.exec_open.take() {
                exec_span = Some((tag, id, es));
            }
            job.preempt_pause = Some(pause);
        }
        if let Some((tag, seq, parent, ls, layer)) = layer_span {
            self.emit_span(tag, SpanStage::Layer, seq, parent, ls, pause, layer);
        }
        if let Some((tag, id, es)) = exec_span {
            let core = self.span_core;
            self.tracer.emit(|| TraceEvent::Span {
                id,
                parent: request_span_id(tag),
                request: tag,
                stage: SpanStage::Exec,
                start: es,
                end: pause,
                core,
                detail: victim.index() as u64,
            });
        }
        self.interrupts.push(InterruptEvent {
            request_cycle,
            victim,
            winner,
            layer: request_layer,
            request_pc,
            t1,
            t2,
            t4: 0,
            resumed_at: None,
        });
        self.events.push(Event::Preempted { cycle: self.now, slot: victim, by: winner });
        {
            let (layer, request) = (request_layer, request_cycle);
            self.tracer.emit(|| TraceEvent::Preempted { victim, winner, layer, request, t1, t2 });
        }
        self.running = None;
        Ok(())
    }

    /// Runs until `deadline` cycles or until all work is done, whichever
    /// comes first.
    ///
    /// # Errors
    ///
    /// Propagates backend errors.
    pub fn run_until(&mut self, deadline: u64) -> Result<(), SimError> {
        self.run_inner(deadline, false).map(|_| ())
    }

    /// Like [`Engine::run_until`], but additionally stops right after any
    /// job completes. Returns `true` when it stopped because of a
    /// completion (a slot-virtualizing scheduler uses this to re-bind
    /// freed slots at the exact completion cycle instead of at the next
    /// deadline barrier).
    ///
    /// # Errors
    ///
    /// Propagates backend errors.
    pub fn run_until_complete(&mut self, deadline: u64) -> Result<bool, SimError> {
        self.run_inner(deadline, true)
    }

    fn run_inner(&mut self, deadline: u64, stop_on_complete: bool) -> Result<bool, SimError> {
        let completed_base = self.completed.len();
        loop {
            if stop_on_complete && self.completed.len() > completed_base {
                return Ok(true);
            }
            if self.now >= deadline {
                return Ok(false);
            }
            self.release_due();
            let best = self.best_ready();
            match (self.running, best) {
                (None, None) => {
                    // Idle: jump to the next arrival, or stop.
                    match self.arrivals.peek() {
                        Some(&Reverse((t, _, _))) => self.now = t.min(deadline),
                        None => return Ok(false),
                    }
                }
                (None, Some(s)) => self.dispatch(s)?,
                (Some(r), Some(s)) if s.preempts(r) => {
                    // Note: slot 0 can never be a victim — nothing preempts it.
                    self.preempt(r, s)?;
                }
                (Some(r), _) => {
                    // Host self-profiling is wall-clock only: it never
                    // touches the virtual clock or any trace output.
                    let prof = self.host_prof.clone();
                    let t0 = prof.as_ref().map(|_| std::time::Instant::now());
                    let cyc0 = self.now;
                    let batched = self.try_exec_layer(r, deadline)?;
                    let done = match batched {
                        Some(done) => done,
                        None => self.exec_step(r)?,
                    };
                    if let (Some(p), Some(t0)) = (prof.as_ref(), t0) {
                        let comp = if batched.is_some() {
                            HostComponent::Tier1Batch
                        } else {
                            HostComponent::EngineStep
                        };
                        p.add(comp, t0.elapsed().as_nanos() as u64, self.now - cyc0);
                    }
                    if done {
                        self.complete_job(r);
                    }
                }
            }
        }
    }

    /// Runs until all submitted work completes.
    ///
    /// # Errors
    ///
    /// Propagates backend errors.
    pub fn run(&mut self) -> Result<Report, SimError> {
        self.run_until(u64::MAX)?;
        Ok(self.report())
    }

    /// Snapshot of the current report.
    #[must_use]
    pub fn report(&self) -> Report {
        Report {
            events: self.events.clone(),
            interrupts: self.interrupts.clone(),
            completed_jobs: self.completed.clone(),
            final_cycle: self.now,
            profile: self.profile.clone(),
        }
    }
}

/// A core is the canonical event-engine component: it wakes at
/// [`Engine::next_event`] and ticks by running to the barrier.
impl<B: Backend> crate::event::Component for Engine<B> {
    fn next_tick(&self) -> Option<u64> {
        self.next_event()
    }

    fn tick(&mut self, deadline: u64) -> Result<(), SimError> {
        self.run_until(deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TimingBackend;
    use inca_compiler::Compiler;
    use inca_model::{zoo, Shape3};

    fn engine(strategy: InterruptStrategy) -> Engine<TimingBackend> {
        Engine::new(AccelConfig::paper_big(), strategy, TimingBackend::new())
    }

    fn tiny_vi() -> inca_isa::Program {
        let c = Compiler::new(AccelConfig::paper_big().arch);
        c.compile_vi(&zoo::tiny(Shape3::new(3, 32, 32)).unwrap()).unwrap()
    }

    #[test]
    fn single_task_runs_to_completion() {
        let mut e = engine(InterruptStrategy::VirtualInstruction);
        let slot = TaskSlot::new(2).unwrap();
        e.load(slot, tiny_vi()).unwrap();
        e.request_at(100, slot).unwrap();
        let r = e.run().unwrap();
        assert_eq!(r.completed_jobs.len(), 1);
        assert!(r.interrupts.is_empty());
        let j = &r.completed_jobs[0];
        assert_eq!(j.release, 100);
        assert_eq!(j.start, 100);
        assert!(j.finish > 100);
        assert_eq!(j.preemptions, 0);
        assert_eq!(j.extra_cost_cycles, 0);
    }

    #[test]
    fn request_before_load_is_rejected() {
        let mut e = engine(InterruptStrategy::CpuLike);
        assert!(matches!(e.request_at(0, TaskSlot::new(1).unwrap()), Err(SimError::EmptySlot(_))));
    }

    #[test]
    fn high_priority_preempts_low() {
        for strategy in [
            InterruptStrategy::CpuLike,
            InterruptStrategy::LayerByLayer,
            InterruptStrategy::VirtualInstruction,
        ] {
            let mut e = engine(strategy);
            let hi = TaskSlot::new(1).unwrap();
            let lo = TaskSlot::new(3).unwrap();
            e.load(hi, tiny_vi()).unwrap();
            e.load(lo, tiny_vi()).unwrap();
            e.request_at(0, lo).unwrap();
            e.request_at(2_000, hi).unwrap();
            let r = e.run().unwrap();
            assert_eq!(r.completed_jobs.len(), 2, "{strategy}");
            assert_eq!(r.interrupts.len(), 1, "{strategy}");
            let ev = &r.interrupts[0];
            assert_eq!(ev.victim, lo);
            assert_eq!(ev.winner, hi);
            // The high-priority job starts right after latency elapses.
            let hi_job = r.jobs_of(hi).next().unwrap();
            assert_eq!(hi_job.start, ev.request_cycle + ev.latency(), "{strategy}");
            // The low job finishes after the high one.
            let lo_job = r.jobs_of(lo).next().unwrap();
            assert!(lo_job.finish > hi_job.finish, "{strategy}");
        }
    }

    #[test]
    fn strategies_order_latency_and_cost_as_the_paper() {
        let mut results = Vec::new();
        for strategy in [
            InterruptStrategy::CpuLike,
            InterruptStrategy::LayerByLayer,
            InterruptStrategy::VirtualInstruction,
        ] {
            let mut e = engine(strategy);
            let hi = TaskSlot::new(1).unwrap();
            let lo = TaskSlot::new(3).unwrap();
            e.load(hi, tiny_vi()).unwrap();
            e.load(lo, tiny_vi()).unwrap();
            e.request_at(0, lo).unwrap();
            e.request_at(2_000, hi).unwrap();
            let r = e.run().unwrap();
            let ev = r.interrupts[0];
            results.push((strategy, ev.latency(), ev.cost()));
        }
        let (_, lat_cpu, cost_cpu) = results[0];
        let (_, lat_lbl, cost_lbl) = results[1];
        let (_, lat_vi, cost_vi) = results[2];
        assert_eq!(cost_lbl, 0, "layer-by-layer has no extra cost");
        assert!(cost_vi < cost_cpu, "VI cost below CPU-like");
        assert!(lat_vi < lat_lbl, "VI latency below layer-by-layer");
        assert!(lat_cpu > 0 && lat_vi > 0);
    }

    #[test]
    fn slot0_is_never_preempted() {
        let mut e = engine(InterruptStrategy::VirtualInstruction);
        let top = TaskSlot::HIGHEST;
        let lo = TaskSlot::new(1).unwrap();
        e.load(top, tiny_vi()).unwrap();
        e.load(lo, tiny_vi()).unwrap();
        e.request_at(0, top).unwrap();
        // Another request for slot 0 while slot 0 runs cannot preempt it,
        // and nothing can preempt slot 0 anyway.
        e.request_at(10, lo).unwrap();
        let r = e.run().unwrap();
        assert!(r.interrupts.is_empty());
        let first = r.completed_jobs[0];
        assert_eq!(first.slot, top);
    }

    #[test]
    fn backlog_queues_jobs_fifo() {
        let mut e = engine(InterruptStrategy::LayerByLayer);
        let slot = TaskSlot::new(2).unwrap();
        e.load(slot, tiny_vi()).unwrap();
        e.request_at(0, slot).unwrap();
        e.request_at(1, slot).unwrap();
        e.request_at(2, slot).unwrap();
        let r = e.run().unwrap();
        assert_eq!(r.completed_jobs.len(), 3);
        let finishes: Vec<u64> = r.completed_jobs.iter().map(|j| j.finish).collect();
        assert!(finishes.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn auto_resubmit_fills_run_until_window() {
        let mut e = engine(InterruptStrategy::VirtualInstruction);
        let slot = TaskSlot::new(3).unwrap();
        e.load(slot, tiny_vi()).unwrap();
        e.set_auto_resubmit(slot, true);
        e.request_at(0, slot).unwrap();
        e.run_until(3_000_000).unwrap();
        let r = e.report();
        assert!(r.completed_jobs.len() > 2, "got {}", r.completed_jobs.len());
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut e = engine(InterruptStrategy::VirtualInstruction);
        let slot = TaskSlot::new(3).unwrap();
        e.load(slot, tiny_vi()).unwrap();
        e.request_at(0, slot).unwrap();
        e.run_until(10).unwrap();
        assert!(e.now() >= 10);
        // A single instruction may overshoot, but not by more than one
        // instruction's cost.
        assert!(e.now() < 10 + 100_000);
    }

    #[test]
    fn profiling_accounts_for_all_cycles() {
        let mut e = engine(InterruptStrategy::VirtualInstruction);
        e.set_profiling(true);
        let hi = TaskSlot::new(1).unwrap();
        let lo = TaskSlot::new(3).unwrap();
        e.load(hi, tiny_vi()).unwrap();
        e.load(lo, tiny_vi()).unwrap();
        e.request_at(0, lo).unwrap();
        e.request_at(2_000, hi).unwrap();
        let r = e.run().unwrap();
        let p = r.profile.clone().expect("profiling enabled");
        // Per-slot totals equal busy + extra cycles of the jobs.
        for slot in [hi, lo] {
            let job = r.jobs_of(slot).next().unwrap();
            assert_eq!(p.slot_cycles(slot), job.busy_cycles + job.extra_cost_cycles, "{slot}");
        }
        // Opcode breakdown sums to the same grand total.
        let grand: u64 = p.per_opcode.iter().sum();
        let jobs: u64 = r.completed_jobs.iter().map(|j| j.busy_cycles + j.extra_cost_cycles).sum();
        assert_eq!(grand, jobs);
        // The overhead counter equals the probes' t2+t4 sum (possibly 0
        // when the interrupt lands on an empty point).
        let probed: u64 = r.interrupts.iter().map(InterruptEvent::cost).sum();
        assert_eq!(p.interrupt_overhead, probed);
        assert!(!p.hottest_layers(lo).is_empty());
    }

    #[test]
    fn dma_overlap_shortens_but_preserves_work() {
        let run = |overlap: bool| {
            let mut cfg = AccelConfig::paper_big();
            cfg.dma_overlap = overlap;
            let mut e =
                Engine::new(cfg, InterruptStrategy::VirtualInstruction, TimingBackend::new());
            let slot = TaskSlot::new(2).unwrap();
            e.load(slot, tiny_vi()).unwrap();
            e.request_at(0, slot).unwrap();
            let r = e.run().unwrap();
            r.completed_jobs[0].finish
        };
        let sequential = run(false);
        let overlapped = run(true);
        assert!(overlapped < sequential, "{overlapped} !< {sequential}");
        // Overlap can at best hide all transfers, not compute.
        assert!(overlapped * 3 > sequential, "implausible speedup");
    }

    #[test]
    fn gantt_renders_all_slots() {
        let mut e = engine(InterruptStrategy::VirtualInstruction);
        let hi = TaskSlot::new(1).unwrap();
        let lo = TaskSlot::new(3).unwrap();
        e.load(hi, tiny_vi()).unwrap();
        e.load(lo, tiny_vi()).unwrap();
        e.request_at(0, lo).unwrap();
        e.request_at(2_000, hi).unwrap();
        let r = e.run().unwrap();
        let g = r.gantt(60);
        assert_eq!(g.lines().count(), TASK_SLOTS + 1);
        assert!(g.contains('#'));
        // The preempted slot shows at least two occupancy intervals.
        let occ = r.occupancy();
        assert!(occ[lo.index()].len() >= 2);
        assert_eq!(occ[hi.index()].len(), 1);
        assert!(occ[0].is_empty() && occ[2].is_empty());
    }

    #[test]
    fn load_busy_slot_is_rejected() {
        let mut e = engine(InterruptStrategy::VirtualInstruction);
        let slot = TaskSlot::new(3).unwrap();
        e.load(slot, tiny_vi()).unwrap();
        e.request_at(0, slot).unwrap();
        e.run_until(10).unwrap();
        assert!(matches!(e.load(slot, tiny_vi()), Err(SimError::Engine(_))));
    }
}
