//! Bit-exact functional backend: executes the VI-ISA with int8 feature
//! maps, int8 weights and int32 accumulation against a task-private DDR
//! image.
//!
//! Besides producing real numbers, the functional backend is a *verifier*:
//! every CALC looks its operands up in explicit on-chip buffer models that
//! are cleared on context switch, so a missing `LOAD_D`/`VIR_LOAD_D`/
//! `VIR_LOAD_W` (a compiler or IAU bug) surfaces as a
//! [`SimError::MissingData`] instead of silently wrong output.

use std::collections::HashMap;

use inca_isa::{Instr, LayerKind, LayerMeta, Opcode, PoolKind, Program, TaskSlot, TASK_SLOTS};

use crate::{Backend, SimError};

/// A task's DDR image (task-relative addressing, as the IAU's per-slot
/// offset registers would provide).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DdrImage {
    bytes: Vec<u8>,
}

impl DdrImage {
    /// Creates a zeroed image of `capacity` bytes.
    #[must_use]
    pub fn new(capacity: u64) -> Self {
        Self { bytes: vec![0; usize::try_from(capacity).expect("image fits usize")] }
    }

    /// Creates an image sized for `program`, with the weight region filled
    /// deterministically from `seed` (a splitmix-style hash of the byte
    /// address) and activations zeroed.
    #[must_use]
    pub fn for_program(program: &Program, seed: u64) -> Self {
        let mut img = Self::new(program.memory.total_bytes().max(1));
        let (w0, w1) = (
            program.memory.weights_base,
            program.memory.weights_base + program.memory.weights_bytes,
        );
        for addr in w0..w1 {
            img.bytes[addr as usize] = Self::hash_byte(seed, addr);
        }
        img
    }

    fn hash_byte(seed: u64, addr: u64) -> u8 {
        let mut z = seed ^ addr.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (z >> 33) as u8
    }

    /// Image capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// Writes `data` at the task-relative address.
    ///
    /// # Panics
    ///
    /// Panics when the range exceeds the image.
    pub fn write(&mut self, addr: u64, data: &[u8]) {
        let a = usize::try_from(addr).expect("addr fits usize");
        self.bytes[a..a + data.len()].copy_from_slice(data);
    }

    /// Reads `len` bytes at the task-relative address.
    ///
    /// # Panics
    ///
    /// Panics when the range exceeds the image.
    #[must_use]
    pub fn read(&self, addr: u64, len: u64) -> &[u8] {
        let a = usize::try_from(addr).expect("addr fits usize");
        &self.bytes[a..a + usize::try_from(len).expect("len fits usize")]
    }

    /// Reads a layer's whole output feature map as int8.
    #[must_use]
    pub fn read_output(&self, meta: &LayerMeta) -> Vec<i8> {
        self.read(meta.output_addr, meta.out_shape.bytes())
            .iter()
            .map(|&b| b as i8)
            .collect()
    }

    fn get(&self, slot: TaskSlot, addr: u64, len: u64) -> Result<&[u8], SimError> {
        let end = addr.checked_add(len).ok_or(SimError::AddressOutOfRange {
            slot,
            addr,
            len,
            capacity: self.capacity(),
        })?;
        if end > self.capacity() {
            return Err(SimError::AddressOutOfRange { slot, addr, len, capacity: self.capacity() });
        }
        Ok(&self.bytes[addr as usize..end as usize])
    }
}

/// One CalcBlob's accumulators in the output buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
struct OutBlob {
    layer: u16,
    blob: u32,
    c0: u16,
    chans: u16,
    h0: u16,
    rows: u16,
    w: u32,
    acc: Vec<i32>,
    finalized: bool,
}

impl OutBlob {
    fn idx(&self, ch: u32, row: u32, x: u32) -> usize {
        let cr = ch - u32::from(self.c0);
        let rr = row - u32::from(self.h0);
        ((cr * u32::from(self.rows) + rr) * self.w + x) as usize
    }

    fn covers(&self, ch: u32, row: u32) -> bool {
        ch >= u32::from(self.c0)
            && ch < u32::from(self.c0) + u32::from(self.chans)
            && row >= u32::from(self.h0)
            && row < u32::from(self.h0) + u32::from(self.rows)
    }
}

/// On-chip buffer models (keyed, capacity enforced by the compiler).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Buffers {
    /// `(layer, buffer-virtual channel, input row) -> row of width W_in`.
    data: HashMap<(u16, u32, u32), Vec<i8>>,
    /// `(layer, oc, ic) -> k*k kernel slice` (depthwise: `oc == ic`).
    weights: HashMap<(u16, u32, u32), Vec<i8>>,
    outputs: Vec<OutBlob>,
}

impl Buffers {
    fn clear(&mut self) {
        self.data.clear();
        self.weights.clear();
        self.outputs.clear();
    }
}

/// The functional backend.
#[derive(Debug, Clone, Default)]
pub struct FuncBackend {
    images: [Option<DdrImage>; TASK_SLOTS],
    bufs: Buffers,
    owner: Option<TaskSlot>,
    snapshots: [Option<Buffers>; TASK_SLOTS],
    bytes_written: [u64; TASK_SLOTS],
}

impl FuncBackend {
    /// Creates a backend with no images installed.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs the DDR image backing `slot`.
    pub fn install_image(&mut self, slot: TaskSlot, image: DdrImage) {
        self.images[slot.index()] = Some(image);
    }

    /// The image backing `slot`, if installed.
    #[must_use]
    pub fn image(&self, slot: TaskSlot) -> Option<&DdrImage> {
        self.images[slot.index()].as_ref()
    }

    /// Mutable access to the image backing `slot` (e.g. to write inputs
    /// between jobs).
    #[must_use]
    pub fn image_mut(&mut self, slot: TaskSlot) -> Option<&mut DdrImage> {
        self.images[slot.index()].as_mut()
    }

    fn image_of(&mut self, slot: TaskSlot) -> Result<&mut DdrImage, SimError> {
        self.images[slot.index()].as_mut().ok_or(SimError::NoImage(slot))
    }

    /// Total bytes `SAVE`/`VIR_SAVE` wrote to `slot`'s DDR image.
    ///
    /// With correct SaveID patching, an interrupted run writes *exactly*
    /// as many bytes as an uninterrupted one — no output byte twice
    /// (DESIGN.md invariant 4).
    #[must_use]
    pub fn bytes_written(&self, slot: TaskSlot) -> u64 {
        self.bytes_written[slot.index()]
    }

    fn load_d(&mut self, slot: TaskSlot, meta: &LayerMeta, instr: &Instr) -> Result<(), SimError> {
        let w_in = u64::from(meta.in_shape.w);
        let h_in = u64::from(meta.in_shape.h);
        let base = instr.ddr.addr;
        let layer = instr.layer;
        let tile = instr.tile;
        let image = self.images[slot.index()].as_ref().ok_or(SimError::NoImage(slot))?;
        for j in 0..u64::from(tile.chans) {
            for r in 0..u64::from(tile.rows) {
                let addr = base + j * h_in * w_in + r * w_in;
                let row: Vec<i8> = image.get(slot, addr, w_in)?.iter().map(|&b| b as i8).collect();
                let ch = u32::from(tile.c0) + j as u32;
                let in_row = u32::from(tile.h0) + r as u32;
                self.bufs.data.insert((layer, ch, in_row), row);
            }
        }
        Ok(())
    }

    fn load_w(&mut self, slot: TaskSlot, meta: &LayerMeta, instr: &Instr) -> Result<(), SimError> {
        let k2 = u64::from(meta.kind.kernel()) * u64::from(meta.kind.kernel());
        let layer = instr.layer;
        let tile = instr.tile;
        if matches!(meta.kind, LayerKind::DwConv { .. }) {
            let image = self.images[slot.index()].as_ref().ok_or(SimError::NoImage(slot))?;
            for j in 0..u64::from(tile.chans) {
                let addr = instr.ddr.addr + j * k2;
                let w: Vec<i8> = image.get(slot, addr, k2)?.iter().map(|&b| b as i8).collect();
                let c = u32::from(tile.c0) + j as u32;
                self.bufs.weights.insert((layer, c, c), w);
            }
            return Ok(());
        }
        let c_in = u64::from(meta.in_shape.c);
        let image = self.images[slot.index()].as_ref().ok_or(SimError::NoImage(slot))?;
        for j in 0..u64::from(tile.chans) {
            for i in 0..u64::from(tile.ics) {
                let addr = instr.ddr.addr + (j * c_in + i) * k2;
                let w: Vec<i8> = image.get(slot, addr, k2)?.iter().map(|&b| b as i8).collect();
                let oc = u32::from(tile.c0) + j as u32;
                let ic = u32::from(tile.ic0) + i as u32;
                self.bufs.weights.insert((layer, oc, ic), w);
            }
        }
        Ok(())
    }

    fn data_at(&self, layer: u16, ch: u32, row: u32) -> Result<&[i8], SimError> {
        self.bufs
            .data
            .get(&(layer, ch, row))
            .map(Vec::as_slice)
            .ok_or(SimError::MissingData { layer, channel: ch, row })
    }

    fn weights_at(&self, layer: u16, oc: u32, ic: u32) -> Result<&[i8], SimError> {
        self.bufs
            .weights
            .get(&(layer, oc, ic))
            .map(Vec::as_slice)
            .ok_or(SimError::MissingWeights { layer, oc, ic })
    }

    fn blob_entry(&mut self, instr: &Instr, meta: &LayerMeta) -> usize {
        if let Some(i) = self
            .bufs
            .outputs
            .iter()
            .position(|b| b.layer == instr.layer && b.blob == instr.blob)
        {
            return i;
        }
        let t = instr.tile;
        self.bufs.outputs.push(OutBlob {
            layer: instr.layer,
            blob: instr.blob,
            c0: t.c0,
            chans: t.chans,
            h0: t.h0,
            rows: t.rows,
            w: meta.out_shape.w,
            acc: vec![0; usize::from(t.chans) * usize::from(t.rows) * meta.out_shape.w as usize],
            finalized: false,
        });
        self.bufs.outputs.len() - 1
    }

    #[allow(clippy::too_many_lines)]
    fn calc(&mut self, instr: &Instr, meta: &LayerMeta) -> Result<(), SimError> {
        let entry = self.blob_entry(instr, meta);
        let t = instr.tile;
        let (k, s, p) = (
            i64::from(meta.kind.kernel()),
            i64::from(meta.kind.stride()),
            i64::from(meta.kind.pad()),
        );
        let (h_in, w_in) = (i64::from(meta.in_shape.h), i64::from(meta.in_shape.w));
        let w_out = meta.out_shape.w;
        let layer = instr.layer;

        // Compute into a scratch to satisfy the borrow checker, then merge.
        let mut scratch =
            vec![0i64; usize::from(t.chans) * usize::from(t.rows) * w_out as usize];
        let sidx = |cr: u32, rr: u32, x: u32| -> usize {
            ((cr * u32::from(t.rows) + rr) * w_out + x) as usize
        };

        match meta.kind {
            LayerKind::Conv { .. } => {
                for cr in 0..u32::from(t.chans) {
                    let oc = u32::from(t.c0) + cr;
                    for rr in 0..u32::from(t.rows) {
                        let out_r = i64::from(t.h0) + i64::from(rr);
                        for ic in t.ic_range() {
                            let w = self.weights_at(layer, oc, ic)?.to_vec();
                            for ky in 0..k {
                                let in_r = out_r * s - p + ky;
                                if in_r < 0 || in_r >= h_in {
                                    continue;
                                }
                                let row = self.data_at(layer, ic, in_r as u32)?;
                                for x in 0..w_out {
                                    let mut acc = 0i64;
                                    for kx in 0..k {
                                        let in_x = i64::from(x) * s - p + kx;
                                        if in_x < 0 || in_x >= w_in {
                                            continue;
                                        }
                                        acc += i64::from(row[in_x as usize])
                                            * i64::from(w[(ky * k + kx) as usize]);
                                    }
                                    scratch[sidx(cr, rr, x)] += acc;
                                }
                            }
                        }
                    }
                }
            }
            LayerKind::DwConv { .. } => {
                for cr in 0..u32::from(t.chans) {
                    let c = u32::from(t.c0) + cr;
                    let w = self.weights_at(layer, c, c)?.to_vec();
                    for rr in 0..u32::from(t.rows) {
                        let out_r = i64::from(t.h0) + i64::from(rr);
                        for ky in 0..k {
                            let in_r = out_r * s - p + ky;
                            if in_r < 0 || in_r >= h_in {
                                continue;
                            }
                            let row = self.data_at(layer, c, in_r as u32)?;
                            for x in 0..w_out {
                                let mut acc = 0i64;
                                for kx in 0..k {
                                    let in_x = i64::from(x) * s - p + kx;
                                    if in_x < 0 || in_x >= w_in {
                                        continue;
                                    }
                                    acc += i64::from(row[in_x as usize])
                                        * i64::from(w[(ky * k + kx) as usize]);
                                }
                                scratch[sidx(cr, rr, x)] += acc;
                            }
                        }
                    }
                }
            }
            LayerKind::Pool { kind, .. } => {
                for cr in 0..u32::from(t.chans) {
                    let c = u32::from(t.c0) + cr;
                    for rr in 0..u32::from(t.rows) {
                        let out_r = i64::from(t.h0) + i64::from(rr);
                        for x in 0..w_out {
                            let mut max = i64::MIN;
                            let mut sum = 0i64;
                            let mut count = 0i64;
                            for ky in 0..k {
                                let in_r = out_r * s - p + ky;
                                if in_r < 0 || in_r >= h_in {
                                    continue;
                                }
                                let row = self.data_at(layer, c, in_r as u32)?;
                                for kx in 0..k {
                                    let in_x = i64::from(x) * s - p + kx;
                                    if in_x < 0 || in_x >= w_in {
                                        continue;
                                    }
                                    let v = i64::from(row[in_x as usize]);
                                    max = max.max(v);
                                    sum += v;
                                    count += 1;
                                }
                            }
                            scratch[sidx(cr, rr, x)] = match kind {
                                PoolKind::Max => {
                                    if count == 0 {
                                        0
                                    } else {
                                        max
                                    }
                                }
                                PoolKind::Avg => {
                                    if count == 0 {
                                        0
                                    } else {
                                        sum / count
                                    }
                                }
                                PoolKind::Gem { .. } => unreachable!("GeM is GlobalPool"),
                            };
                        }
                    }
                }
            }
            LayerKind::GlobalPool { kind } => {
                for cr in 0..u32::from(t.chans) {
                    let c = u32::from(t.c0) + cr;
                    let mut sum = 0i64;
                    let mut powered = 0f64;
                    let mut max = i64::MIN;
                    let n = i64::from(meta.in_shape.h) * i64::from(meta.in_shape.w);
                    for r in 0..meta.in_shape.h {
                        let row = self.data_at(layer, c, r)?;
                        for &v in row {
                            let v = i64::from(v);
                            sum += v;
                            max = max.max(v);
                            if let PoolKind::Gem { p } = kind {
                                powered += f64::from(v.max(0) as i32).powi(i32::from(p));
                            }
                        }
                    }
                    scratch[sidx(cr, 0, 0)] = match kind {
                        PoolKind::Avg => sum / n.max(1),
                        PoolKind::Max => max.max(0),
                        PoolKind::Gem { p } => {
                            let mean = powered / n.max(1) as f64;
                            mean.powf(1.0 / f64::from(p)).round() as i64
                        }
                    };
                }
            }
            LayerKind::Add => {
                let c_in = meta.in_shape.c;
                for cr in 0..u32::from(t.chans) {
                    let c = u32::from(t.c0) + cr;
                    for rr in 0..u32::from(t.rows) {
                        let r = u32::from(t.h0) + rr;
                        let a = self.data_at(layer, c, r)?.to_vec();
                        let b = self.data_at(layer, c + c_in, r)?;
                        for x in 0..w_out {
                            scratch[sidx(cr, rr, x)] =
                                i64::from(a[x as usize]) + i64::from(b[x as usize]);
                        }
                    }
                }
            }
            LayerKind::FullyConnected => {
                for cr in 0..u32::from(t.chans) {
                    let oc = u32::from(t.c0) + cr;
                    let mut acc = 0i64;
                    for ic in t.ic_range() {
                        let w = self.weights_at(layer, oc, ic)?;
                        let row = self.data_at(layer, ic, 0)?;
                        acc += i64::from(row[0]) * i64::from(w[0]);
                    }
                    scratch[sidx(cr, 0, 0)] = acc;
                }
            }
        }

        let blob = &mut self.bufs.outputs[entry];
        for (dst, add) in blob.acc.iter_mut().zip(scratch) {
            *dst = dst.saturating_add(i32::try_from(add.clamp(
                i64::from(i32::MIN),
                i64::from(i32::MAX),
            ))
            .expect("clamped"));
        }

        if instr.op == Opcode::CalcF {
            let shift = meta.quant_shift;
            let relu = meta.relu;
            for v in &mut blob.acc {
                let mut x = *v >> shift;
                if relu {
                    x = x.max(0);
                }
                *v = x.clamp(-128, 127);
            }
            blob.finalized = true;
        }
        Ok(())
    }

    fn save(&mut self, slot: TaskSlot, meta: &LayerMeta, instr: &Instr) -> Result<(), SimError> {
        let t = instr.tile;
        let (h_out, w_out) = (u64::from(meta.out_shape.h), u64::from(meta.out_shape.w));
        let layer = instr.layer;
        for j in 0..u32::from(t.chans) {
            let ch = u32::from(t.c0) + j;
            for rr in 0..u32::from(t.rows) {
                let row = u32::from(t.h0) + rr;
                let blob = self
                    .bufs
                    .outputs
                    .iter()
                    .find(|b| b.layer == layer && b.finalized && b.covers(ch, row))
                    .ok_or(SimError::MissingOutput { layer, channel: ch, row })?;
                let mut bytes = Vec::with_capacity(w_out as usize);
                for x in 0..meta.out_shape.w {
                    bytes.push(blob.acc[blob.idx(ch, row, x)] as i8 as u8);
                }
                let addr = instr.ddr.addr + u64::from(j) * h_out * w_out + u64::from(rr) * w_out;
                let image = self.image_of(slot)?;
                let end = addr + w_out;
                if end > image.capacity() {
                    return Err(SimError::AddressOutOfRange {
                        slot,
                        addr,
                        len: w_out,
                        capacity: image.capacity(),
                    });
                }
                image.write(addr, &bytes);
                self.bytes_written[slot.index()] += w_out;
            }
        }
        // A real SAVE retires its blobs from the output buffer.
        if instr.op == Opcode::Save {
            let (c0, c1) = (u32::from(t.c0), u32::from(t.c0) + u32::from(t.chans));
            self.bufs.outputs.retain(|b| {
                !(b.layer == layer
                    && b.h0 == t.h0
                    && u32::from(b.c0) >= c0
                    && u32::from(b.c0) + u32::from(b.chans) <= c1)
            });
        }
        Ok(())
    }
}

impl Backend for FuncBackend {
    fn execute(
        &mut self,
        slot: TaskSlot,
        program: &Program,
        instr: &Instr,
    ) -> Result<(), SimError> {
        let meta = program.layer_of(instr);
        match instr.op {
            Opcode::LoadD | Opcode::VirLoadD => self.load_d(slot, meta, instr),
            Opcode::LoadW | Opcode::VirLoadW => self.load_w(slot, meta, instr),
            Opcode::CalcI | Opcode::CalcF => self.calc(instr, meta),
            Opcode::Save | Opcode::VirSave => self.save(slot, meta, instr),
        }
    }

    fn on_switch(&mut self, slot: TaskSlot) {
        if self.owner != Some(slot) {
            self.bufs.clear();
            self.owner = Some(slot);
        }
    }

    fn snapshot(&mut self, slot: TaskSlot) {
        self.snapshots[slot.index()] = Some(self.bufs.clone());
    }

    fn restore(&mut self, slot: TaskSlot) -> Result<(), SimError> {
        let snap = self.snapshots[slot.index()].take().ok_or(SimError::NoSnapshot(slot))?;
        self.bufs = snap;
        self.owner = Some(slot);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_hash_is_deterministic_and_seed_sensitive() {
        assert_eq!(DdrImage::hash_byte(1, 42), DdrImage::hash_byte(1, 42));
        let a: Vec<u8> = (0..64).map(|i| DdrImage::hash_byte(7, i)).collect();
        let b: Vec<u8> = (0..64).map(|i| DdrImage::hash_byte(8, i)).collect();
        assert_ne!(a, b);
        // Not constant either.
        assert!(a.iter().any(|&x| x != a[0]));
    }

    #[test]
    fn image_read_write_round_trip() {
        let mut img = DdrImage::new(128);
        img.write(16, &[1, 2, 3, 4]);
        assert_eq!(img.read(16, 4), &[1, 2, 3, 4]);
        assert_eq!(img.capacity(), 128);
    }

    #[test]
    fn switch_clears_buffers_restore_brings_them_back() {
        let mut b = FuncBackend::new();
        let s0 = TaskSlot::new(0).unwrap();
        let s1 = TaskSlot::new(1).unwrap();
        b.on_switch(s0);
        b.bufs.data.insert((0, 0, 0), vec![1, 2, 3]);
        b.snapshot(s0);
        b.on_switch(s1);
        assert!(b.bufs.data.is_empty());
        b.restore(s0).unwrap();
        assert_eq!(b.bufs.data.get(&(0, 0, 0)).unwrap(), &vec![1, 2, 3]);
        assert!(b.restore(s0).is_err(), "snapshot is single-use");
    }
}
