//! # inca-accel — the interruptible CNN accelerator, simulated
//!
//! This crate is the paper's hardware, rebuilt as a simulator:
//!
//! * [`AccelConfig`] — an Angel-Eye-class accelerator at 300 MHz with
//!   configurable parallelism (`Para_in`/`Para_out`/`Para_height`), a DDR
//!   DMA model and a compute-array cost model calibrated against the
//!   paper's per-layer timing table (see `EXPERIMENTS.md`, E5);
//! * [`Engine`] — instruction-level execution of VI-ISA [`Program`]s over
//!   four priority task slots, with the IAU's interrupt handling:
//!   [`InterruptStrategy::CpuLike`], [`InterruptStrategy::LayerByLayer`]
//!   and the proposed [`InterruptStrategy::VirtualInstruction`];
//! * [`TimingBackend`] — pure cycle accounting (no data), fast enough for
//!   full ResNet101 sweeps;
//! * [`FuncBackend`] — bit-exact int8 execution of the *same* instruction
//!   stream against a DDR image, used to prove interrupt transparency
//!   (an interrupted run produces byte-identical output);
//! * [`analysis`] — the paper's closed-form worst-case latency model
//!   (Eq. 1: `R_l = (Para_out × Para_height) / (Ch_out × H)`);
//! * [`resources`] — FPGA resource estimates anchored to the paper's
//!   Vivado report (IAU ≈ 3 % of the accelerator's LUTs, zero DSPs).
//!
//! ## Example: preempting ResNet-ish work with a high-priority task
//!
//! ```
//! use inca_accel::{AccelConfig, Engine, InterruptStrategy, TimingBackend};
//! use inca_compiler::Compiler;
//! use inca_isa::TaskSlot;
//! use inca_model::{zoo, Shape3};
//!
//! let compiler = Compiler::new(AccelConfig::paper_big().arch);
//! let fe = compiler.compile_vi(&zoo::tiny(Shape3::new(3, 32, 32))?)?;
//! let pr = compiler.compile_vi(&zoo::tiny(Shape3::new(3, 64, 64))?)?;
//!
//! let mut engine = Engine::new(
//!     AccelConfig::paper_big(),
//!     InterruptStrategy::VirtualInstruction,
//!     TimingBackend::new(),
//! );
//! let hi = TaskSlot::new(1)?;
//! let lo = TaskSlot::new(3)?;
//! engine.load(hi, fe)?;
//! engine.load(lo, pr)?;
//! engine.request_at(0, lo)?;        // PR starts first...
//! engine.request_at(5_000, hi)?;    // ...FE preempts it mid-layer
//! let report = engine.run()?;
//! assert_eq!(report.interrupts.len(), 1);
//! assert_eq!(report.completed_jobs.len(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod config;
mod cost;
mod engine;
mod event;
mod func;
mod multicore;

pub mod analysis;
pub mod energy;
pub mod resources;

pub use backend::{Backend, SimError, TimingBackend};
pub use config::AccelConfig;
pub use cost::instr_cycles;
pub use engine::{
    Engine, Event, InterruptEvent, InterruptStrategy, JobRecord, Profile, Report, TaskState,
};
pub use event::{AdvanceMode, AdvanceStats, Component, WakeHeap};
pub use func::{CalcKernel, DdrImage, ExecTier, FuncBackend};
pub use multicore::{CoreId, CorePool};

pub use inca_isa::{ArchSpec, Parallelism, Program, TaskSlot};
