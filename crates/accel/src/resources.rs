//! FPGA resource estimates (paper draft Table "hardware").
//!
//! Synthesis cannot be simulated in software, so this module anchors to
//! the paper's Vivado post-implementation numbers on the ZCU102/ZU9 and
//! scales the accelerator's datapath terms with the configured
//! parallelism. Its purpose is the paper's architectural argument: the
//! IAU adds *no DSPs* and about 3 % of the accelerator's LUTs, which is
//! why retrofitting interruptibility onto instruction-driven accelerators
//! is cheap.

use inca_isa::Parallelism;

/// FPGA resource usage.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct ResourceEstimate {
    /// DSP48 slices.
    pub dsp: u32,
    /// Look-up tables.
    pub lut: u32,
    /// Flip-flops.
    pub ff: u32,
    /// 36Kb block RAMs.
    pub bram: u32,
}

impl ResourceEstimate {
    /// Utilisation of this estimate against a device budget, per resource,
    /// in percent.
    #[must_use]
    pub fn utilisation(&self, device: &ResourceEstimate) -> [f64; 4] {
        let pct = |a: u32, b: u32| 100.0 * f64::from(a) / f64::from(b.max(1));
        [
            pct(self.dsp, device.dsp),
            pct(self.lut, device.lut),
            pct(self.ff, device.ff),
            pct(self.bram, device.bram),
        ]
    }
}

impl std::ops::Add for ResourceEstimate {
    type Output = ResourceEstimate;

    fn add(self, rhs: ResourceEstimate) -> ResourceEstimate {
        ResourceEstimate {
            dsp: self.dsp + rhs.dsp,
            lut: self.lut + rhs.lut,
            ff: self.ff + rhs.ff,
            bram: self.bram + rhs.bram,
        }
    }
}

/// The ZU9 MPSoC (ZCU102) device budget (paper Table "hardware", row
/// "On-Board resource").
#[must_use]
pub fn zu9_device() -> ResourceEstimate {
    ResourceEstimate { dsp: 2520, lut: 274_080, ff: 548_160, bram: 912 }
}

/// Paper's reference parallelism for the reported accelerator numbers.
const REFERENCE_PES: u32 = 16 * 16 * 8;

/// The CNN accelerator itself, scaled from the paper's reference
/// implementation (1282 DSP / 74569 LUT / 171416 FF / 499 BRAM at
/// 16×16×8 parallelism). The datapath terms scale with PE count; a fixed
/// control overhead does not.
#[must_use]
pub fn cnn_accelerator(p: Parallelism) -> ResourceEstimate {
    let scale = f64::from(p.pe_count()) / f64::from(REFERENCE_PES);
    let mix = |datapath: f64, fixed: f64| ((datapath * scale + fixed).round()) as u32;
    ResourceEstimate {
        dsp: mix(1282.0, 0.0),
        lut: mix(64_569.0, 10_000.0),
        ff: mix(151_416.0, 20_000.0),
        bram: mix(449.0, 50.0),
    }
}

/// The Instruction Arrangement Unit: constant-size control logic
/// (paper: 0 DSP / 2268 LUT / 4633 FF / 4 BRAM), independent of the
/// compute-array parallelism.
#[must_use]
pub fn iau() -> ResourceEstimate {
    ResourceEstimate { dsp: 0, lut: 2268, ff: 4633, bram: 4 }
}

/// The feature-point-extraction post-processing block (NMS etc.;
/// paper: 25 DSP / 17573 LUT / 29115 FF / 10 BRAM).
#[must_use]
pub fn fe_post_processing() -> ResourceEstimate {
    ResourceEstimate { dsp: 25, lut: 17_573, ff: 29_115, bram: 10 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_parallelism_reproduces_paper_row() {
        let r = cnn_accelerator(Parallelism::new(16, 16, 8));
        assert_eq!(r.dsp, 1282);
        assert_eq!(r.lut, 74_569);
        assert_eq!(r.ff, 171_416);
        assert_eq!(r.bram, 499);
    }

    #[test]
    fn iau_is_cheap() {
        let acc = cnn_accelerator(Parallelism::new(16, 16, 8));
        let iau = iau();
        assert_eq!(iau.dsp, 0, "IAU uses no DSPs");
        let lut_ratio = f64::from(iau.lut) / f64::from(acc.lut);
        assert!(lut_ratio < 0.05, "IAU LUTs should be <5% of the accelerator");
    }

    #[test]
    fn everything_fits_the_zu9() {
        let total = cnn_accelerator(Parallelism::new(16, 16, 8)) + iau() + fe_post_processing();
        let util = total.utilisation(&zu9_device());
        for (i, u) in util.iter().enumerate() {
            assert!(*u < 100.0, "resource {i} over budget: {u}%");
        }
    }

    #[test]
    fn smaller_accelerator_uses_fewer_resources() {
        let big = cnn_accelerator(Parallelism::new(16, 16, 8));
        let small = cnn_accelerator(Parallelism::new(8, 8, 4));
        assert!(small.dsp < big.dsp);
        assert!(small.lut < big.lut);
    }
}
