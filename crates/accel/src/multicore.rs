//! Partitioned multi-core scheduling — the paper's future-work direction
//! ("INCA currently focuses on interrupt support for single-core
//! multi-tasking. We plan to investigate the multi-core multi-tasking...",
//! §VI).
//!
//! A [`CorePool`] is N independent accelerator cores, each with its own
//! engine, datapath and task slots, advancing the same virtual clock.
//! Tasks are *partitioned*: each job is routed to a fixed core, which is
//! how a deployment without INCA would buy deadline isolation — at N× the
//! silicon. The `abl_multicore` bench compares one INCA core against a
//! partitioned non-preemptive pool on deadline misses, throughput and
//! resource cost.
//!
//! Advancement is discrete-event by default
//! ([`AdvanceMode::EventDriven`]): cores register in a wake-time
//! [`WakeHeap`] keyed by [`Engine::next_event`], and a barrier only
//! ticks armed cores — quiescent ones are skipped entirely, so pool
//! advancement costs O(events), not O(barriers × cores). The cycle-box
//! legacy loop survives as [`AdvanceMode::Stepping`]; both modes are
//! byte-identical on every deterministic artifact (the
//! `event_differential` suite is the proof).

use inca_isa::{Program, TaskSlot};
use std::sync::Arc;

use crate::event::{AdvanceMode, AdvanceStats, Component, WakeHeap};
use crate::resources::{cnn_accelerator, iau, ResourceEstimate};
use crate::{AccelConfig, Backend, Engine, InterruptStrategy, Report, SimError};

/// Identifies a core within a [`CorePool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CoreId(pub usize);

impl std::fmt::Display for CoreId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// A pool of identical accelerator cores with partitioned task placement.
#[derive(Debug)]
pub struct CorePool<B: Backend> {
    cfg: AccelConfig,
    cores: Vec<Engine<B>>,
    mode: AdvanceMode,
    wake: WakeHeap,
    stats: AdvanceStats,
}

impl<B: Backend> CorePool<B> {
    /// Creates a pool of `n` cores, each built with `make_backend`.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero.
    pub fn new(
        n: usize,
        cfg: AccelConfig,
        strategy: InterruptStrategy,
        mut make_backend: impl FnMut() -> B,
    ) -> Self {
        assert!(n > 0, "a pool needs at least one core");
        let cores = (0..n).map(|_| Engine::new(cfg, strategy, make_backend())).collect();
        Self {
            cfg,
            cores,
            mode: AdvanceMode::default(),
            wake: WakeHeap::new(n),
            stats: AdvanceStats::default(),
        }
    }

    /// Builds a pool from pre-configured engines — the escape hatch for
    /// heterogeneous pools (mixed strategies or configs per core). The
    /// pool-wide config (used by [`CorePool::resource_cost`]) is taken
    /// from the first engine.
    ///
    /// # Panics
    ///
    /// Panics when `engines` is empty.
    #[must_use]
    pub fn from_engines(engines: Vec<Engine<B>>) -> Self {
        assert!(!engines.is_empty(), "a pool needs at least one core");
        let cfg = *engines[0].config();
        let mut wake = WakeHeap::new(engines.len());
        // Pre-configured engines may arrive with work already queued.
        for (i, e) in engines.iter().enumerate() {
            if let Some(t) = e.next_event() {
                wake.arm(i, t);
            }
        }
        Self {
            cfg,
            cores: engines,
            mode: AdvanceMode::default(),
            wake,
            stats: AdvanceStats::default(),
        }
    }

    /// Selects how [`CorePool::run_until`] / [`CorePool::run`] advance
    /// the cores. Switching to [`AdvanceMode::EventDriven`] re-arms the
    /// wake heap from every core's [`Engine::next_event`], so a pool
    /// driven in legacy mode for a while resumes event-driven safely.
    pub fn set_advance_mode(&mut self, mode: AdvanceMode) {
        self.mode = mode;
        if mode == AdvanceMode::EventDriven {
            for i in 0..self.cores.len() {
                if let Some(t) = self.cores[i].next_event() {
                    self.wake.arm(i, t);
                }
            }
        }
    }

    /// The advance mode in effect.
    #[must_use]
    pub fn advance_mode(&self) -> AdvanceMode {
        self.mode
    }

    /// Event-engine work counters (barriers, wakes, skips). Stepping-mode
    /// barriers count every core as a wake.
    #[must_use]
    pub fn advance_stats(&self) -> AdvanceStats {
        self.stats
    }

    /// The earliest armed wake across all cores, with its core — `None`
    /// when every core is quiescent. Event-driven drivers use this to
    /// jump the clock instead of polling.
    pub fn next_wake(&mut self) -> Option<(u64, CoreId)> {
        self.wake.next_wake().map(|(t, i)| (t, CoreId(i)))
    }

    /// Arms an explicit wake event for `core` at `cycle` — the hook
    /// external couplings (scheduler pumps, batch flushes, DMA arrivals)
    /// use to guarantee the event engine visits the core at its next
    /// barrier even though the work is not yet visible to the engine.
    ///
    /// # Panics
    ///
    /// Panics for an out-of-range core id.
    pub fn wake_at(&mut self, core: CoreId, cycle: u64) {
        self.wake.arm(core.0, cycle);
    }

    /// Appends one core to the pool mid-run — the grow half of elastic
    /// scaling. The engine joins the wake heap immediately (armed when it
    /// arrives with work queued) and gets the next core id; existing core
    /// ids, arms and reports are untouched, so growth never perturbs the
    /// deterministic state of the cores already running.
    pub fn push_core(&mut self, engine: Engine<B>) -> CoreId {
        let idx = self.wake.add_component();
        debug_assert_eq!(idx, self.cores.len(), "heap and core vector stay aligned");
        if let Some(t) = engine.next_event() {
            self.wake.arm(idx, t);
        }
        self.cores.push(engine);
        CoreId(idx)
    }

    /// Number of cores.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.cores.len()
    }

    /// All valid core ids, in order.
    pub fn core_ids(&self) -> impl Iterator<Item = CoreId> {
        (0..self.cores.len()).map(CoreId)
    }

    /// The engine of one core.
    ///
    /// # Panics
    ///
    /// Panics for an out-of-range core id.
    #[must_use]
    pub fn core(&self, core: CoreId) -> &Engine<B> {
        &self.cores[core.0]
    }

    /// The engine of one core, or `None` for an out-of-range id.
    #[must_use]
    pub fn try_core(&self, core: CoreId) -> Option<&Engine<B>> {
        self.cores.get(core.0)
    }

    /// The engine of one core. Mutable access can inject work behind the
    /// pool's back, so the core is conservatively armed; the next barrier
    /// revalidates against [`Engine::next_event`] and skips it for free
    /// if it is still quiescent.
    ///
    /// # Panics
    ///
    /// Panics for an out-of-range core id.
    #[must_use]
    pub fn core_mut(&mut self, core: CoreId) -> &mut Engine<B> {
        self.wake.arm(core.0, 0);
        &mut self.cores[core.0]
    }

    /// The engine of one core, mutable, or `None` for an out-of-range id.
    #[must_use]
    pub fn try_core_mut(&mut self, core: CoreId) -> Option<&mut Engine<B>> {
        if core.0 < self.cores.len() {
            self.wake.arm(core.0, 0);
        }
        self.cores.get_mut(core.0)
    }

    /// The pool-wide virtual clock: the furthest cycle any core reached.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.cores.iter().map(Engine::now).max().unwrap_or(0)
    }

    /// Cycles `core` spent executing instructions across its completed
    /// jobs (interrupt backup/restore overhead is excluded — see
    /// [`JobRecord`](crate::JobRecord)`::extra_cost_cycles`).
    ///
    /// # Panics
    ///
    /// Panics for an out-of-range core id.
    #[must_use]
    pub fn busy_cycles(&self, core: CoreId) -> u64 {
        self.cores[core.0].report().completed_jobs.iter().map(|j| j.busy_cycles).sum()
    }

    /// Fraction of `core`'s elapsed virtual time spent executing
    /// instructions, in `[0, 1]`. Zero before the clock advances.
    ///
    /// # Panics
    ///
    /// Panics for an out-of-range core id.
    #[must_use]
    pub fn occupancy(&self, core: CoreId) -> f64 {
        let now = self.cores[core.0].now();
        if now == 0 {
            return 0.0;
        }
        self.busy_cycles(core) as f64 / now as f64
    }

    /// Loads `program` into `slot` of `core`.
    ///
    /// # Errors
    ///
    /// See [`Engine::load`].
    pub fn load(
        &mut self,
        core: CoreId,
        slot: TaskSlot,
        program: impl Into<Arc<Program>>,
    ) -> Result<(), SimError> {
        self.cores[core.0].load(slot, program)
    }

    /// Schedules a request on `core`/`slot` at `cycle`.
    ///
    /// # Errors
    ///
    /// See [`Engine::request_at`].
    pub fn request_at(&mut self, cycle: u64, core: CoreId, slot: TaskSlot) -> Result<(), SimError> {
        self.cores[core.0].request_at(cycle, slot)?;
        self.wake.arm(core.0, cycle);
        Ok(())
    }

    /// Runs every core to completion.
    ///
    /// # Errors
    ///
    /// Propagates the first core's simulation error.
    pub fn run(&mut self) -> Result<Vec<Report>, SimError> {
        if self.mode == AdvanceMode::EventDriven {
            self.advance(u64::MAX)?;
            return Ok(self.reports());
        }
        self.cores.iter_mut().map(Engine::run).collect()
    }

    /// Runs every core until `deadline` cycles.
    ///
    /// In [`AdvanceMode::EventDriven`] only armed cores tick (ascending
    /// core order, matching the stepping loop so merged trace streams
    /// stay byte-identical); quiescent cores are skipped, which is a
    /// provable state no-op — an idle engine's `run_until` touches
    /// nothing, not even its clock.
    ///
    /// # Errors
    ///
    /// Propagates the first core's simulation error.
    pub fn run_until(&mut self, deadline: u64) -> Result<(), SimError> {
        match self.mode {
            AdvanceMode::Stepping => {
                self.stats.barriers += 1;
                self.stats.wakes += self.cores.len() as u64;
                for c in &mut self.cores {
                    c.run_until(deadline)?;
                }
                Ok(())
            }
            AdvanceMode::EventDriven => self.advance(deadline),
        }
    }

    /// One event-driven barrier: tick every armed core to `deadline`,
    /// re-arming those that still have (or newly gained) future work.
    fn advance(&mut self, deadline: u64) -> Result<(), SimError> {
        self.stats.barriers += 1;
        let armed = self.wake.drain_armed();
        let mut ticked = 0u64;
        for i in armed {
            // Revalidate: `core_mut` arms conservatively, so an armed
            // core may turn out quiescent. Ticking it anyway would be
            // harmless (a no-op), just wasted work.
            if self.cores[i].next_tick().is_none() {
                continue;
            }
            ticked += 1;
            self.cores[i].tick(deadline)?;
            if let Some(t) = self.cores[i].next_tick() {
                self.wake.arm(i, t);
            }
        }
        self.stats.wakes += ticked;
        self.stats.skips += self.cores.len() as u64 - ticked;
        Ok(())
    }

    /// Reports for all cores (indexed by core id).
    #[must_use]
    pub fn reports(&self) -> Vec<Report> {
        self.cores.iter().map(Engine::report).collect()
    }

    /// Total silicon cost of the pool: N accelerator datapaths, plus one
    /// IAU per core when the strategy needs one (any preemptive strategy).
    #[must_use]
    pub fn resource_cost(&self) -> ResourceEstimate {
        let per_core = match self.cores[0].strategy() {
            InterruptStrategy::NonPreemptive => cnn_accelerator(self.cfg.arch.parallelism),
            _ => cnn_accelerator(self.cfg.arch.parallelism) + iau(),
        };
        self.cores.iter().skip(1).fold(per_core, |acc, _| acc + per_core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TimingBackend;
    use inca_compiler::Compiler;
    use inca_model::{zoo, Shape3};

    fn tiny() -> Program {
        Compiler::new(AccelConfig::paper_big().arch)
            .compile_vi(&zoo::tiny(Shape3::new(3, 32, 32)).unwrap())
            .unwrap()
    }

    #[test]
    fn partitioned_jobs_run_in_parallel() {
        let mut pool = CorePool::new(
            2,
            AccelConfig::paper_big(),
            InterruptStrategy::NonPreemptive,
            TimingBackend::new,
        );
        let slot = TaskSlot::new(1).unwrap();
        let p = Arc::new(tiny());
        pool.load(CoreId(0), slot, Arc::clone(&p)).unwrap();
        pool.load(CoreId(1), slot, Arc::clone(&p)).unwrap();
        pool.request_at(0, CoreId(0), slot).unwrap();
        pool.request_at(0, CoreId(1), slot).unwrap();
        let reports = pool.run().unwrap();
        assert_eq!(reports.len(), 2);
        // Both finish at the same (parallel) time — no serialisation.
        assert_eq!(reports[0].completed_jobs[0].finish, reports[1].completed_jobs[0].finish);
    }

    #[test]
    fn pool_resource_cost_scales_with_cores() {
        let one = CorePool::new(
            1,
            AccelConfig::paper_big(),
            InterruptStrategy::VirtualInstruction,
            TimingBackend::new,
        );
        let two = CorePool::new(
            2,
            AccelConfig::paper_big(),
            InterruptStrategy::NonPreemptive,
            TimingBackend::new,
        );
        let c1 = one.resource_cost();
        let c2 = two.resource_cost();
        // One preemptive core (accelerator + IAU) is far cheaper than two
        // plain cores.
        assert!(c1.dsp < c2.dsp);
        assert!(c1.lut < c2.lut);
        // And the IAU's cost is visible but small.
        assert_eq!(c1.dsp, cnn_accelerator(AccelConfig::paper_big().arch.parallelism).dsp);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn empty_pool_rejected() {
        let _ = CorePool::new(
            0,
            AccelConfig::paper_big(),
            InterruptStrategy::NonPreemptive,
            TimingBackend::new,
        );
    }

    #[test]
    fn request_on_unloaded_slot_errors() {
        let mut pool = CorePool::new(
            2,
            AccelConfig::paper_big(),
            InterruptStrategy::NonPreemptive,
            TimingBackend::new,
        );
        let slot = TaskSlot::new(1).unwrap();
        pool.load(CoreId(0), slot, tiny()).unwrap();
        // Core 1 has no program in that slot: per-core isolation means the
        // load on core 0 must not leak over.
        assert!(pool.request_at(0, CoreId(0), slot).is_ok());
        assert!(matches!(pool.request_at(0, CoreId(1), slot), Err(SimError::EmptySlot(_))));
    }

    #[test]
    fn run_until_advances_every_core_to_the_deadline() {
        let mut pool = CorePool::new(
            3,
            AccelConfig::paper_big(),
            InterruptStrategy::NonPreemptive,
            TimingBackend::new,
        );
        let slot = TaskSlot::new(2).unwrap();
        let p = Arc::new(tiny());
        for core in 0..3 {
            pool.load(CoreId(core), slot, Arc::clone(&p)).unwrap();
        }
        // Only cores 0 and 2 get work; core 1 idles but still advances.
        pool.request_at(0, CoreId(0), slot).unwrap();
        pool.request_at(0, CoreId(2), slot).unwrap();

        // A deadline before the makespan completes nothing...
        pool.run_until(10).unwrap();
        assert!(pool.reports().iter().all(|r| r.completed_jobs.is_empty()));
        // ...and a generous one completes exactly the requested jobs.
        pool.run_until(1_000_000_000).unwrap();
        let reports = pool.reports();
        assert_eq!(reports.len(), 3, "reports are indexed by core id");
        assert_eq!(reports[0].completed_jobs.len(), 1);
        assert_eq!(reports[1].completed_jobs.len(), 0);
        assert_eq!(reports[2].completed_jobs.len(), 1);
        // Idle cores share the clock but record no events.
        assert!(reports[1].events.is_empty());
    }

    #[test]
    fn per_core_reports_aggregate_partitioned_work() {
        let mut pool = CorePool::new(
            2,
            AccelConfig::paper_big(),
            InterruptStrategy::NonPreemptive,
            TimingBackend::new,
        );
        let slot = TaskSlot::new(1).unwrap();
        let p = Arc::new(tiny());
        pool.load(CoreId(0), slot, Arc::clone(&p)).unwrap();
        pool.load(CoreId(1), slot, Arc::clone(&p)).unwrap();
        // Core 0 runs two back-to-back jobs, core 1 runs one.
        pool.request_at(0, CoreId(0), slot).unwrap();
        pool.request_at(1, CoreId(0), slot).unwrap();
        pool.request_at(0, CoreId(1), slot).unwrap();
        let reports = pool.run().unwrap();
        let per_core: Vec<usize> = reports.iter().map(|r| r.completed_jobs.len()).collect();
        assert_eq!(per_core, vec![2, 1]);
        let total: usize = per_core.iter().sum();
        assert_eq!(total, 3, "pool-wide job count is the sum of the partitions");
        // Partitioning serialises within a core: core 0's second job waits
        // for its first, so it finishes later than core 1's only job.
        assert!(
            reports[0].completed_jobs[1].finish > reports[1].completed_jobs[0].finish,
            "back-to-back jobs on one core serialise"
        );
    }

    #[test]
    fn resource_cost_folds_linearly_over_cores() {
        let cost_of = |n: usize| {
            CorePool::new(
                n,
                AccelConfig::paper_big(),
                InterruptStrategy::VirtualInstruction,
                TimingBackend::new,
            )
            .resource_cost()
        };
        let (c1, c3) = (cost_of(1), cost_of(3));
        assert_eq!(c3.dsp, 3 * c1.dsp, "3 preemptive cores cost 3x the DSPs");
        assert_eq!(c3.lut, 3 * c1.lut);
        assert_eq!(c3.ff, 3 * c1.ff);
        assert_eq!(c3.bram, 3 * c1.bram);
        // Preemptive cores each carry an IAU on top of the datapath.
        let plain = cnn_accelerator(AccelConfig::paper_big().arch.parallelism);
        assert_eq!(c1.lut, (plain + iau()).lut);
    }

    #[test]
    fn push_core_grows_the_pool_mid_run() {
        let mut pool = CorePool::new(
            1,
            AccelConfig::paper_big(),
            InterruptStrategy::NonPreemptive,
            TimingBackend::new,
        );
        let slot = TaskSlot::new(1).unwrap();
        let p = Arc::new(tiny());
        pool.load(CoreId(0), slot, Arc::clone(&p)).unwrap();
        pool.request_at(0, CoreId(0), slot).unwrap();
        pool.run_until(10).unwrap();
        // Grow while core 0 is mid-job; the new core serves its own work.
        let mut e = Engine::new(
            AccelConfig::paper_big(),
            InterruptStrategy::NonPreemptive,
            TimingBackend::new(),
        );
        e.load(slot, Arc::clone(&p)).unwrap();
        let id = pool.push_core(e);
        assert_eq!(id, CoreId(1));
        assert_eq!(pool.cores(), 2);
        pool.request_at(20, id, slot).unwrap();
        let reports = pool.run().unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].completed_jobs.len(), 1);
        assert_eq!(reports[1].completed_jobs.len(), 1);
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn core_mut_out_of_range_panics() {
        let mut pool = CorePool::new(
            1,
            AccelConfig::paper_big(),
            InterruptStrategy::NonPreemptive,
            TimingBackend::new,
        );
        let _ = pool.core_mut(CoreId(1));
    }
}
