//! The IAU's per-job `InputOffset`/`OutputOffset` registers: the same
//! compiled program serves different frame buffers, as the paper's
//! software does for each camera frame.

use inca_accel::{AccelConfig, DdrImage, Engine, FuncBackend, InterruptStrategy};
use inca_compiler::Compiler;
use inca_isa::{Program, TaskSlot};
use inca_model::{zoo, Shape3};

fn compile() -> Program {
    Compiler::new(AccelConfig::paper_small().arch)
        .compile_vi(&zoo::tiny(Shape3::new(3, 32, 32)).unwrap())
        .unwrap()
}

fn pattern(seed: u8, n: u64) -> Vec<u8> {
    (0..n).map(|i| ((i * 31 + u64::from(seed) * 7) % 251) as u8).collect()
}

/// Reference: run the program at zero offsets with `input` in the base
/// region, return the base-region output.
fn reference(program: &Program, input: &[u8]) -> Vec<u8> {
    let slot = TaskSlot::LOWEST;
    let mut backend = FuncBackend::new();
    let mut img = DdrImage::for_program(program, 77);
    img.write(program.memory.input_base, input);
    backend.install_image(slot, img);
    let mut e =
        Engine::new(AccelConfig::paper_small(), InterruptStrategy::VirtualInstruction, backend);
    e.load(slot, program.clone()).unwrap();
    e.request_at(0, slot).unwrap();
    e.run().unwrap();
    e.backend()
        .image(slot)
        .unwrap()
        .read(program.memory.output_base, program.memory.output_bytes)
        .to_vec()
}

#[test]
fn offsets_double_buffer_frames() {
    let program = compile();
    let m = program.memory.clone();
    assert!(m.input_bytes > 0 && m.output_bytes > 0, "regions recorded by the compiler");

    let frame_a = pattern(1, m.input_bytes);
    let frame_b = pattern(2, m.input_bytes);
    let expect_a = reference(&program, &frame_a);
    let expect_b = reference(&program, &frame_b);
    assert_ne!(expect_a, expect_b, "distinct frames produce distinct outputs");

    // One image holding both frames and both output buffers, appended
    // past the program's base footprint.
    // Place frame B exactly at `base` and its output right after it,
    // regardless of where the base-region input/output live.
    let base = m.total_bytes();
    let in_off = base - m.input_base;
    let out_off = base + m.input_bytes - m.output_base;
    let slot = TaskSlot::LOWEST;
    let mut backend = FuncBackend::new();
    let mut img = DdrImage::new(base + m.input_bytes + m.output_bytes);
    // Copy the weight region from the canonical image.
    let canonical = DdrImage::for_program(&program, 77);
    let w = canonical.read(m.weights_base, m.weights_bytes).to_vec();
    img.write(m.weights_base, &w);
    img.write(m.input_base, &frame_a);
    img.write(m.input_base + in_off, &frame_b);
    backend.install_image(slot, img);

    let mut e =
        Engine::new(AccelConfig::paper_small(), InterruptStrategy::VirtualInstruction, backend);
    e.load(slot, program.clone()).unwrap();
    // Job 1: frame A at base offsets; job 2: frame B via the registers.
    e.request_job(0, slot, 0, 0).unwrap();
    e.request_job(1, slot, in_off, out_off).unwrap();
    let report = e.run().unwrap();
    assert_eq!(report.completed_jobs.len(), 2);

    let img = e.backend().image(slot).unwrap();
    assert_eq!(img.read(m.output_base, m.output_bytes), &expect_a[..], "frame A output");
    assert_eq!(
        img.read(m.output_base + out_off, m.output_bytes),
        &expect_b[..],
        "frame B output landed at OutputOffset"
    );
}

#[test]
fn offsets_survive_preemption() {
    // A job running with offsets is preempted and resumed; VIR_LOAD_D of
    // the first layer must re-read from the *offset* frame, and the
    // patched SAVEs must write to the *offset* output.
    let program = compile();
    let m = program.memory.clone();
    let frame = pattern(9, m.input_bytes);
    let expected = reference(&program, &frame);

    let hi_prog = Compiler::new(AccelConfig::paper_small().arch)
        .compile_vi(&zoo::tiny(Shape3::new(3, 16, 16)).unwrap())
        .unwrap();

    let base = m.total_bytes();
    let (in_off, out_off) = (base - m.input_base, base + m.input_bytes - m.output_base);
    let lo = TaskSlot::new(3).unwrap();
    let hi = TaskSlot::new(1).unwrap();
    let mut backend = FuncBackend::new();
    let mut img = DdrImage::new(base + m.input_bytes + m.output_bytes);
    let canonical = DdrImage::for_program(&program, 77);
    let w = canonical.read(m.weights_base, m.weights_bytes).to_vec();
    img.write(m.weights_base, &w);
    img.write(m.input_base + in_off, &frame);
    backend.install_image(lo, img);
    backend.install_image(hi, DdrImage::for_program(&hi_prog, 3));

    let mut e =
        Engine::new(AccelConfig::paper_small(), InterruptStrategy::VirtualInstruction, backend);
    e.load(lo, program.clone()).unwrap();
    e.load(hi, hi_prog).unwrap();
    e.request_job(0, lo, in_off, out_off).unwrap();
    e.request_at(5_000, hi).unwrap();
    let report = e.run().unwrap();
    assert_eq!(report.interrupts.len(), 1, "the high task preempted the offset job");

    let img = e.backend().image(lo).unwrap();
    assert_eq!(
        img.read(m.output_base + out_off, m.output_bytes),
        &expected[..],
        "offset output must be bit-identical despite the preemption"
    );
}
