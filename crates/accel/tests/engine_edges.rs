//! Engine edge cases: nested priorities, requests arriving during drains,
//! auto-resubmission under preemption, state transitions, CPU-like nested
//! snapshots and non-preemptive queueing.

use std::sync::Arc;

use inca_accel::{
    AccelConfig, DdrImage, Engine, Event, FuncBackend, InterruptStrategy, Report, TaskState,
    TimingBackend,
};
use inca_compiler::Compiler;
use inca_isa::{Program, TaskSlot};
use inca_model::{zoo, Shape3};

fn program(h: u32) -> Arc<Program> {
    Arc::new(
        Compiler::new(AccelConfig::paper_small().arch)
            .compile_vi(&zoo::tiny(Shape3::new(3, h, h)).unwrap())
            .unwrap(),
    )
}

fn engine(strategy: InterruptStrategy) -> Engine<TimingBackend> {
    Engine::new(AccelConfig::paper_small(), strategy, TimingBackend::new())
}

#[test]
fn higher_request_during_drain_wins_the_dispatch() {
    // Victim (slot 3) is preempted by slot 2; while the layer-by-layer
    // drain runs, an even higher request (slot 1) arrives. After the
    // drain, slot 1 must run first.
    let mut e = engine(InterruptStrategy::LayerByLayer);
    let (s1, s2, s3) =
        (TaskSlot::new(1).unwrap(), TaskSlot::new(2).unwrap(), TaskSlot::new(3).unwrap());
    e.load(s1, program(16)).unwrap();
    e.load(s2, program(16)).unwrap();
    e.load(s3, program(64)).unwrap();
    e.request_at(0, s3).unwrap();
    e.request_at(1_000, s2).unwrap();
    e.request_at(1_100, s1).unwrap();
    let r = e.run().unwrap();
    assert_eq!(r.completed_jobs.len(), 3);
    // Completion order: s1, s2, s3.
    let order: Vec<_> = r.completed_jobs.iter().map(|j| j.slot).collect();
    assert_eq!(order, vec![s1, s2, s3]);
    // Only one preemption of s3 is recorded (the drain serves both).
    assert!(r.interrupts.iter().all(|ev| ev.victim == s3));
}

#[test]
fn auto_resubmit_continues_under_preemption() {
    let mut e = engine(InterruptStrategy::VirtualInstruction);
    let (hi, lo) = (TaskSlot::new(1).unwrap(), TaskSlot::new(3).unwrap());
    e.load(hi, program(16)).unwrap();
    e.load(lo, program(32)).unwrap();
    e.set_auto_resubmit(lo, true);
    e.request_at(0, lo).unwrap();
    for k in 0..5 {
        e.request_at(10_000 + k * 30_000, hi).unwrap();
    }
    e.run_until(400_000).unwrap();
    let r = e.report();
    assert!(r.jobs_of(lo).count() >= 3, "PR-style task keeps completing");
    assert_eq!(r.jobs_of(hi).count(), 5, "all high jobs done");
    assert!(!r.interrupts.is_empty());
}

#[test]
fn task_state_transitions() {
    let mut e = engine(InterruptStrategy::VirtualInstruction);
    let (hi, lo) = (TaskSlot::new(1).unwrap(), TaskSlot::new(3).unwrap());
    e.load(hi, program(16)).unwrap();
    e.load(lo, program(64)).unwrap();
    assert_eq!(e.task_state(lo), TaskState::Idle);

    e.request_at(0, lo).unwrap();
    e.request_at(5_000, hi).unwrap();
    // Before the preemption: lo running.
    e.run_until(1_000).unwrap();
    assert_eq!(e.task_state(lo), TaskState::Running);
    assert_eq!(e.task_state(hi), TaskState::Idle);
    // After the hi release and its dispatch: lo preempted, hi running.
    e.run_until(10_000).unwrap();
    assert_eq!(e.task_state(hi), TaskState::Running);
    assert_eq!(e.task_state(lo), TaskState::Preempted);
    // At the end: both idle again.
    e.run_until(u64::MAX).unwrap();
    assert_eq!(e.task_state(hi), TaskState::Idle);
    assert_eq!(e.task_state(lo), TaskState::Idle);
}

#[test]
fn non_preemptive_makes_high_wait_exactly() {
    let mut e = engine(InterruptStrategy::NonPreemptive);
    let (hi, lo) = (TaskSlot::new(1).unwrap(), TaskSlot::new(3).unwrap());
    e.load(hi, program(16)).unwrap();
    e.load(lo, program(64)).unwrap();
    e.request_at(0, lo).unwrap();
    e.request_at(1_000, hi).unwrap();
    let r = e.run().unwrap();
    let lo_job = *r.jobs_of(lo).next().unwrap();
    let hi_job = *r.jobs_of(hi).next().unwrap();
    // High starts exactly when low finishes.
    assert_eq!(hi_job.start, lo_job.finish);
    // And the recorded latency equals the wait.
    assert_eq!(r.interrupts.len(), 1);
    assert_eq!(r.interrupts[0].latency(), lo_job.finish - 1_000);
    assert_eq!(r.interrupts[0].cost(), 0);
}

#[test]
fn cpu_like_nested_snapshots_are_transparent() {
    // Slot 3 snapshotted by slot 2's arrival, slot 2 snapshotted by
    // slot 1's — both must restore correctly (per-slot snapshots).
    let cfg = AccelConfig::paper_small();
    let compiler = Compiler::new(cfg.arch);
    let nets = [
        zoo::tiny(Shape3::new(3, 32, 32)).unwrap(),
        zoo::tiny(Shape3::new(3, 24, 24)).unwrap(),
        zoo::tiny(Shape3::new(3, 16, 16)).unwrap(),
    ];
    let programs: Vec<Arc<Program>> =
        nets.iter().map(|n| Arc::new(compiler.compile(n).unwrap())).collect();

    // References (solo runs).
    let mut references = Vec::new();
    for (i, p) in programs.iter().enumerate() {
        let slot = TaskSlot::new(3).unwrap();
        let mut backend = FuncBackend::new();
        backend.install_image(slot, DdrImage::for_program(p, i as u64));
        let mut e = Engine::new(cfg, InterruptStrategy::CpuLike, backend);
        e.load(slot, Arc::clone(p)).unwrap();
        e.request_at(0, slot).unwrap();
        e.run().unwrap();
        references.push(e.backend().image(slot).unwrap().read_output(p.layers.last().unwrap()));
    }

    let slots = [TaskSlot::new(3).unwrap(), TaskSlot::new(2).unwrap(), TaskSlot::new(1).unwrap()];
    let mut backend = FuncBackend::new();
    for ((slot, p), i) in slots.iter().zip(&programs).zip(0u64..) {
        backend.install_image(*slot, DdrImage::for_program(p, i));
    }
    let mut e = Engine::new(cfg, InterruptStrategy::CpuLike, backend);
    for (slot, p) in slots.iter().zip(&programs) {
        e.load(*slot, Arc::clone(p)).unwrap();
    }
    // CPU-like backup moves the whole 1.1 MB cache set (~96k cycles), so
    // slot 2 only *starts* around cycle 99k; slot 1's request must land
    // inside slot 2's ~10k-cycle run to nest.
    e.request_at(0, slots[0]).unwrap();
    e.request_at(3_000, slots[1]).unwrap();
    e.request_at(101_000, slots[2]).unwrap();
    let r = e.run().unwrap();
    assert!(r.interrupts.len() >= 2, "expected nested preemptions");
    for ((slot, p), expected) in slots.iter().zip(&programs).zip(&references) {
        let out = e.backend().image(*slot).unwrap().read_output(p.layers.last().unwrap());
        assert_eq!(&out, expected, "{slot} corrupted by nested CPU-like switches");
    }
}

#[test]
fn uninterrupted_makespan_is_strategy_independent() {
    // With no contention, the interrupt strategy must not change timing:
    // virtual instructions are free when skipped, and the original stream
    // is identical across strategies.
    let vi_prog = program(48);
    let orig = Arc::new(
        Compiler::new(AccelConfig::paper_small().arch)
            .compile(&zoo::tiny(Shape3::new(3, 48, 48)).unwrap())
            .unwrap(),
    );
    let mut spans = Vec::new();
    for strategy in [
        InterruptStrategy::NonPreemptive,
        InterruptStrategy::CpuLike,
        InterruptStrategy::LayerByLayer,
        InterruptStrategy::VirtualInstruction,
    ] {
        let p = if matches!(strategy, InterruptStrategy::VirtualInstruction) {
            Arc::clone(&vi_prog)
        } else {
            Arc::clone(&orig)
        };
        let mut e = engine(strategy);
        let slot = TaskSlot::new(2).unwrap();
        e.load(slot, p).unwrap();
        e.request_at(0, slot).unwrap();
        spans.push(e.run().unwrap().completed_jobs[0].finish);
    }
    assert!(
        spans.windows(2).all(|w| w[0] == w[1]),
        "makespans differ across strategies: {spans:?}"
    );
}

#[test]
fn request_after_completion_reruns_the_program() {
    let mut e = engine(InterruptStrategy::VirtualInstruction);
    let slot = TaskSlot::new(2).unwrap();
    e.load(slot, program(16)).unwrap();
    e.request_at(0, slot).unwrap();
    e.run().unwrap();
    let first_finish = e.report().completed_jobs[0].finish;
    e.request_at(first_finish + 500, slot).unwrap();
    let r = e.run().unwrap();
    assert_eq!(r.completed_jobs.len(), 2);
    let second = r.completed_jobs[1];
    assert_eq!(second.release, first_finish + 500);
    assert_eq!(
        second.busy_cycles, r.completed_jobs[0].busy_cycles,
        "re-runs execute the identical stream"
    );
}

#[test]
fn gantt_zero_length_interval_at_final_cycle_paints_nothing() {
    // A report snapshotted exactly when a job starts used to round the
    // zero-length interval [final_cycle, final_cycle) onto the last
    // column and paint a spurious `#`.
    let slot = TaskSlot::new(2).unwrap();
    let report = Report {
        events: vec![Event::Submitted { cycle: 100, slot }, Event::Started { cycle: 100, slot }],
        interrupts: vec![],
        completed_jobs: vec![],
        final_cycle: 100,
        profile: None,
    };
    assert_eq!(report.occupancy()[slot.index()], vec![(100, 100)]);
    let g = report.gantt(40);
    let row = g.lines().nth(slot.index()).unwrap();
    assert!(!row.contains('#'), "zero-length interval painted: {row}");
}

#[test]
fn gantt_interval_past_final_cycle_paints_nothing() {
    // Out-of-range intervals (a stale final_cycle below the event log's
    // cycles) must clamp instead of painting the last column or slicing
    // out of bounds.
    let slot = TaskSlot::new(1).unwrap();
    let report = Report {
        events: vec![Event::Started { cycle: 150, slot }, Event::Completed { cycle: 300, slot }],
        interrupts: vec![],
        completed_jobs: vec![],
        final_cycle: 100,
        profile: None,
    };
    let g = report.gantt(40);
    let row = g.lines().nth(slot.index()).unwrap();
    assert!(!row.contains('#'), "out-of-range interval painted: {row}");
}

#[test]
fn gantt_paints_last_column_only_for_real_occupancy() {
    let busy = TaskSlot::new(0).unwrap();
    let idle = TaskSlot::new(3).unwrap();
    let report = Report {
        events: vec![
            Event::Started { cycle: 0, slot: busy },
            Event::Completed { cycle: 100, slot: busy },
            Event::Started { cycle: 100, slot: idle },
        ],
        interrupts: vec![],
        completed_jobs: vec![],
        final_cycle: 100,
        profile: None,
    };
    let g = report.gantt(40);
    let busy_row = g.lines().nth(busy.index()).unwrap();
    let idle_row = g.lines().nth(idle.index()).unwrap();
    // The full-span interval paints every cell including the last column;
    // the zero-length one at the end paints none.
    assert_eq!(busy_row.matches('#').count(), 40, "{busy_row}");
    assert!(!idle_row.contains('#'), "{idle_row}");
}

#[test]
fn simultaneous_requests_resolve_by_priority() {
    let mut e = engine(InterruptStrategy::VirtualInstruction);
    let (a, b) = (TaskSlot::new(1).unwrap(), TaskSlot::new(2).unwrap());
    e.load(a, program(16)).unwrap();
    e.load(b, program(16)).unwrap();
    e.request_at(100, b).unwrap();
    e.request_at(100, a).unwrap(); // same cycle, higher priority
    let r = e.run().unwrap();
    assert_eq!(r.completed_jobs[0].slot, a);
    assert_eq!(r.completed_jobs[1].slot, b);
    assert!(r.interrupts.is_empty(), "no preemption when both are pending");
}
