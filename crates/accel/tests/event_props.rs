//! Event-engine property suite: randomized multi-core request schedules
//! and barrier sequences must make [`AdvanceMode::EventDriven`] and
//! [`AdvanceMode::Stepping`] observationally identical — same per-core
//! reports, same merged trace stream — under every interrupt strategy;
//! and the wake-heap must be registration-order-invariant (the same
//! request multiset armed in any order yields byte-identical traces).
//!
//! Case count defaults to a CI-friendly bound; set
//! `INCA_EVENT_PROP_CASES` (or the suite-wide `INCA_PROP_CASES`) for a
//! deeper sweep.

use std::sync::Arc;

use inca_accel::{
    AccelConfig, AdvanceMode, CoreId, CorePool, Engine, InterruptStrategy, Program, Report,
    TimingBackend,
};
use inca_compiler::Compiler;
use inca_isa::TaskSlot;
use inca_model::{zoo, Shape3};
use inca_obs::{TraceEvent, Tracer};
use proptest::prelude::*;

const STRATEGIES: [InterruptStrategy; 4] = [
    InterruptStrategy::NonPreemptive,
    InterruptStrategy::CpuLike,
    InterruptStrategy::LayerByLayer,
    InterruptStrategy::VirtualInstruction,
];

fn prop_cases(default_cases: u32) -> ProptestConfig {
    let cases = std::env::var("INCA_EVENT_PROP_CASES")
        .ok()
        .or_else(|| std::env::var("INCA_PROP_CASES").ok())
        .and_then(|v| v.parse().ok())
        .unwrap_or(default_cases);
    ProptestConfig::with_cases(cases)
}

fn lo_program() -> Arc<Program> {
    static CACHE: std::sync::OnceLock<Arc<Program>> = std::sync::OnceLock::new();
    Arc::clone(CACHE.get_or_init(|| {
        let c = Compiler::new(AccelConfig::paper_big().arch);
        Arc::new(c.compile_vi(&zoo::tiny(Shape3::new(3, 24, 24)).unwrap()).unwrap())
    }))
}

fn hi_program() -> Arc<Program> {
    static CACHE: std::sync::OnceLock<Arc<Program>> = std::sync::OnceLock::new();
    Arc::clone(CACHE.get_or_init(|| {
        let c = Compiler::new(AccelConfig::paper_big().arch);
        Arc::new(c.compile_vi(&zoo::tiny(Shape3::new(3, 12, 12)).unwrap()).unwrap())
    }))
}

fn lo_span() -> u64 {
    static CACHE: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    *CACHE.get_or_init(|| {
        let slot = TaskSlot::LOWEST;
        let mut e = Engine::new(
            AccelConfig::paper_big(),
            InterruptStrategy::VirtualInstruction,
            TimingBackend::new(),
        );
        e.load(slot, lo_program()).unwrap();
        e.request_at(0, slot).unwrap();
        e.run().unwrap().completed_jobs[0].finish
    })
}

/// One request: (core, cycle, is_hi). The lo task lives in slot 3, the
/// hi task in slot 1, so hi requests preempt under preemptive strategies.
type Req = (usize, u64, bool);

/// Runs `requests` (submitted in the given order) over `cores` cores,
/// advancing through `barriers` then to completion, in `mode`. Returns
/// the per-core reports and the merged shared-tracer stream.
fn run_pool(
    strategy: InterruptStrategy,
    cores: usize,
    requests: &[Req],
    barriers: &[u64],
    mode: AdvanceMode,
) -> (Vec<Report>, Vec<TraceEvent>) {
    let (tracer, buf) = Tracer::ring(1 << 16);
    let (lo_slot, hi_slot) = (TaskSlot::new(3).unwrap(), TaskSlot::new(1).unwrap());
    let engines: Vec<Engine<TimingBackend>> = (0..cores)
        .map(|_| {
            let mut e = Engine::new(AccelConfig::paper_big(), strategy, TimingBackend::new());
            e.set_tracer(tracer.clone());
            e.load(lo_slot, lo_program()).unwrap();
            e.load(hi_slot, hi_program()).unwrap();
            e
        })
        .collect();
    let mut pool = CorePool::from_engines(engines);
    pool.set_advance_mode(mode);
    for &(core, cycle, is_hi) in requests {
        pool.request_at(cycle, CoreId(core), if is_hi { hi_slot } else { lo_slot }).unwrap();
    }
    for &b in barriers {
        pool.run_until(b).unwrap();
    }
    pool.run_until(u64::MAX).unwrap();
    (pool.reports(), buf.drain())
}

proptest! {
    #![proptest_config(prop_cases(16))]

    /// Event-driven ≡ stepping on randomized schedules: arbitrary request
    /// placements (including cores left fully idle), arbitrary barrier
    /// sequences, every strategy.
    #[test]
    fn event_and_stepping_runs_are_identical(
        strategy_idx in 0usize..STRATEGIES.len(),
        cores in 1usize..=4,
        raw_reqs in prop::collection::vec(
            (0usize..4, 0u64..2_000, any::<bool>()), 1..10),
        raw_barriers in prop::collection::vec(0u64..2_000, 0..6),
    ) {
        let strategy = STRATEGIES[strategy_idx];
        let span = lo_span();
        // Scale request/barrier positions into [0, 2×lo-span) so they
        // land before, inside and after the work.
        let requests: Vec<Req> = raw_reqs
            .iter()
            .map(|&(c, frac, hi)| (c % cores, span * 2 * frac / 2_000, hi))
            .collect();
        let mut barriers: Vec<u64> =
            raw_barriers.iter().map(|&f| span * 2 * f / 2_000).collect();
        barriers.sort_unstable();

        let (ev_reports, ev_trace) =
            run_pool(strategy, cores, &requests, &barriers, AdvanceMode::EventDriven);
        let (st_reports, st_trace) =
            run_pool(strategy, cores, &requests, &barriers, AdvanceMode::Stepping);
        prop_assert_eq!(&ev_reports, &st_reports, "{}: reports diverge", strategy);
        prop_assert_eq!(&ev_trace, &st_trace, "{}: merged traces diverge", strategy);
        prop_assert_eq!(
            ev_reports.iter().map(|r| r.completed_jobs.len()).sum::<usize>(),
            requests.len(),
            "every request completes"
        );
    }

    /// Registration-order invariance: arming the wake heap in any
    /// submission order (requests shuffled across cores; per-core
    /// relative order preserved, since same-cycle same-slot arrivals
    /// break ties by submission sequence) yields byte-identical traces.
    #[test]
    fn traces_are_identical_across_randomized_registration_orders(
        strategy_idx in 0usize..STRATEGIES.len(),
        cores in 2usize..=4,
        raw_reqs in prop::collection::vec(
            (0usize..4, 0u64..2_000, any::<bool>()), 2..10),
        perm_seed in any::<u64>(),
    ) {
        let strategy = STRATEGIES[strategy_idx];
        let span = lo_span();
        let requests: Vec<Req> = raw_reqs
            .iter()
            .map(|&(c, frac, hi)| (c % cores, span * 2 * frac / 2_000, hi))
            .collect();

        // Shuffle across cores with a deterministic LCG, keeping each
        // core's own submission order stable.
        let mut shuffled = requests.clone();
        let mut state = perm_seed | 1;
        let mut lcg = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        // Stable sort by a per-core random key: cores reorder, intra-core
        // order survives.
        let keys: Vec<u64> = (0..cores).map(|_| lcg()).collect();
        shuffled.sort_by_key(|&(c, _, _)| keys[c]);

        let (_, a) = run_pool(strategy, cores, &requests, &[], AdvanceMode::EventDriven);
        let (_, b) = run_pool(strategy, cores, &shuffled, &[], AdvanceMode::EventDriven);
        prop_assert_eq!(&a, &b, "{}: registration order leaked into the trace", strategy);
        prop_assert!(!a.is_empty(), "scenario must produce events");
    }
}
