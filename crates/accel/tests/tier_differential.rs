//! Tier-1 / Tier-0 differential suite: a [`FuncBackend`] running
//! trace-compiled layer programs must be *observationally identical* to
//! the pure per-instruction interpreter — same reports (clock, events,
//! interrupt probes, per-job accounting), same engine metrics, same full
//! trace stream, same DDR output bytes and byte counts — under every
//! interrupt strategy, including mid-layer preemption and resume.
//!
//! The deterministic tests pin a contended two-task scenario per
//! strategy; the proptest sweeps randomized request cycles so interrupts
//! land at arbitrary VI points inside compiled runs.

use inca_accel::{
    AccelConfig, DdrImage, Engine, ExecTier, FuncBackend, InterruptStrategy, Program, TaskSlot,
    TimingBackend,
};
use inca_compiler::Compiler;
use inca_isa::Opcode;
use inca_model::{zoo, Shape3};
use inca_obs::{TraceEvent, Tracer};
use proptest::prelude::*;

const STRATEGIES: [InterruptStrategy; 4] = [
    InterruptStrategy::NonPreemptive,
    InterruptStrategy::CpuLike,
    InterruptStrategy::LayerByLayer,
    InterruptStrategy::VirtualInstruction,
];

fn prop_cases(default_cases: u32) -> ProptestConfig {
    let cases =
        std::env::var("INCA_PROP_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(default_cases);
    ProptestConfig::with_cases(cases)
}

fn lo_program() -> Program {
    static CACHE: std::sync::OnceLock<Program> = std::sync::OnceLock::new();
    CACHE
        .get_or_init(|| {
            let c = Compiler::new(AccelConfig::paper_small().arch);
            // Covers Conv, DwConv, Pool, GlobalPool and FC layer kinds.
            c.compile_vi(&zoo::mobilenet_v1(Shape3::new(3, 16, 16)).unwrap()).unwrap()
        })
        .clone()
}

fn hi_program() -> Program {
    static CACHE: std::sync::OnceLock<Program> = std::sync::OnceLock::new();
    CACHE
        .get_or_init(|| {
            let c = Compiler::new(AccelConfig::paper_small().arch);
            c.compile_vi(&zoo::tiny(Shape3::new(3, 12, 12)).unwrap()).unwrap()
        })
        .clone()
}

fn image_for(program: &Program, seed: u64) -> DdrImage {
    let mut img = DdrImage::for_program(program, seed);
    let first = &program.layers[0];
    let n = first.in_shape.bytes();
    let data: Vec<u8> = (0..n).map(|i| ((i * 7 + 3) % 15) as u8).collect();
    img.write(first.input_addr, &data);
    img
}

/// Everything an outside observer can see from one engine run.
#[derive(Debug, PartialEq)]
struct Observables {
    report: inca_accel::Report,
    engine_metrics: inca_obs::Metrics,
    trace: Vec<TraceEvent>,
    outputs: Vec<Vec<Vec<i8>>>,
    bytes_written: Vec<u64>,
}

/// Runs the contended scenario on one tier and captures its observables
/// plus the backend's tier1.* counters.
fn run_tier(
    tier: ExecTier,
    strategy: InterruptStrategy,
    lo: &Program,
    hi: &Program,
    requests: &[(u64, bool)], // (cycle, is_hi)
    threads: usize,
    seed: u64,
) -> (Observables, inca_obs::Metrics) {
    let (lo_slot, hi_slot) = (TaskSlot::new(3).unwrap(), TaskSlot::new(1).unwrap());
    let mut backend = FuncBackend::with_tier(tier);
    backend.set_threads(threads);
    backend.install_image(lo_slot, image_for(lo, seed));
    backend.install_image(hi_slot, image_for(hi, seed ^ 0x5EED));
    let mut e = Engine::new(AccelConfig::paper_small(), strategy, backend);
    let (tracer, buffer) = Tracer::ring(1 << 16);
    e.set_tracer(tracer);
    e.set_profiling(true);
    e.load(lo_slot, lo.clone()).unwrap();
    e.load(hi_slot, hi.clone()).unwrap();
    for &(cycle, is_hi) in requests {
        e.request_at(cycle, if is_hi { hi_slot } else { lo_slot }).unwrap();
    }
    let report = e.run().unwrap();
    let outputs = [(lo, lo_slot), (hi, hi_slot)]
        .iter()
        .map(|(p, s)| {
            let img = e.backend().image(*s).unwrap();
            p.layers.iter().map(|m| img.read_output(m)).collect()
        })
        .collect();
    let bytes_written =
        vec![e.backend().bytes_written(lo_slot), e.backend().bytes_written(hi_slot)];
    let obs = Observables {
        report,
        engine_metrics: e.metrics(),
        trace: buffer.snapshot(),
        outputs,
        bytes_written,
    };
    (obs, e.backend().metrics())
}

fn assert_tiers_agree(
    strategy: InterruptStrategy,
    requests: &[(u64, bool)],
    threads: usize,
    seed: u64,
) -> inca_obs::Metrics {
    let (lo, hi) = (lo_program(), hi_program());
    let (t0, m0) = run_tier(ExecTier::Tier0, strategy, &lo, &hi, requests, threads, seed);
    let (t1, m1) = run_tier(ExecTier::Tier1, strategy, &lo, &hi, requests, threads, seed);
    assert_eq!(t0.report, t1.report, "{strategy}: reports diverge");
    assert_eq!(t0.engine_metrics, t1.engine_metrics, "{strategy}: engine metrics diverge");
    assert_eq!(t0.trace, t1.trace, "{strategy}: trace streams diverge");
    assert_eq!(t0.outputs, t1.outputs, "{strategy}: DDR outputs diverge");
    assert_eq!(t0.bytes_written, t1.bytes_written, "{strategy}: byte counts diverge");
    // Tier-0 must never have engaged the fused path.
    assert_eq!(m0.counter("tier1.exec_layers"), 0, "{strategy}: Tier-0 fused a layer");
    m1
}

#[test]
fn tiers_identical_under_every_strategy() {
    // Requests chosen so the high task lands mid-network.
    let span = makespan(&lo_program());
    let requests = [(0u64, false), (span / 5, true), (span / 2, true)];
    for strategy in STRATEGIES {
        let t1 = assert_tiers_agree(strategy, &requests, 1, 0xD1FF);
        assert!(
            t1.counter("tier1.exec_layers") > 0,
            "{strategy}: Tier-1 never engaged the fused path"
        );
        assert!(
            t1.counter("tier1.exec_instrs_fused") > t1.counter("tier1.exec_layers"),
            "{strategy}: fused layers should batch multiple instructions"
        );
    }
}

#[test]
fn tier1_plan_cache_hits_across_jobs() {
    let (lo, hi) = (lo_program(), hi_program());
    let span = makespan(&lo);
    let requests = [(0u64, false), (span + 1, false)]; // same program twice
    let (_, m1) =
        run_tier(ExecTier::Tier1, InterruptStrategy::VirtualInstruction, &lo, &hi, &requests, 1, 7);
    assert_eq!(m1.counter("tier1.compile_programs"), 1, "one program, one compile");
    assert!(m1.counter("tier1.compile_cache_hits") > 0, "second job must hit the plan cache");
    assert!(m1.counter("tier1.compile_layers") > 0);
}

#[test]
fn tier1_reproduces_stepping_errors() {
    // Drop one LOAD_D: stepping raises MissingData at the consuming CALC.
    // The plan compiler must deopt that layer (missing operand) and the
    // fused path must surface the *identical* error by falling back.
    let c = Compiler::new(AccelConfig::paper_small().arch);
    let program = c.compile_vi(&zoo::tiny(Shape3::new(3, 24, 24)).unwrap()).unwrap();
    let drop_pc = program
        .instrs
        .iter()
        .position(|i| i.op == Opcode::LoadD && i.layer == 1)
        .expect("layer 1 has a LOAD_D");
    let mut b = Program::builder(program.name.clone());
    b.layers = program.layers.clone();
    b.memory = program.memory.clone();
    for (pc, i) in program.instrs.iter().enumerate() {
        if pc != drop_pc {
            b.push(*i);
        }
    }
    b.rebuild_points_from_stream();
    let broken = b.build().unwrap();

    let slot = TaskSlot::new(3).unwrap();
    let mut errors = Vec::new();
    for tier in [ExecTier::Tier0, ExecTier::Tier1] {
        let mut backend = FuncBackend::with_tier(tier);
        backend.install_image(slot, image_for(&broken, 3));
        let mut e =
            Engine::new(AccelConfig::paper_small(), InterruptStrategy::VirtualInstruction, backend);
        e.load(slot, broken.clone()).unwrap();
        e.request_at(0, slot).unwrap();
        errors.push(e.run().expect_err("missing load must be caught"));
    }
    assert_eq!(errors[0], errors[1], "tiers must report the identical verifier error");
}

#[test]
fn engine_free_run_program_matches_stepping() {
    // The engine-free entry point used by perf_smoke: both tiers produce
    // the same DDR image and byte counts.
    let program = lo_program();
    let slot = TaskSlot::LOWEST;
    let mut images = Vec::new();
    let mut bytes = Vec::new();
    for tier in [ExecTier::Tier0, ExecTier::Tier1] {
        let mut backend = FuncBackend::with_tier(tier);
        backend.install_image(slot, image_for(&program, 11));
        backend.run_program(slot, &program).unwrap();
        if tier == ExecTier::Tier1 {
            assert!(
                backend.metrics().counter("tier1.exec_layers") > 0,
                "run_program must engage the fused path"
            );
        }
        bytes.push(backend.bytes_written(slot));
        images.push(backend.image(slot).unwrap().clone());
    }
    assert_eq!(images[0], images[1], "run_program DDR images diverge between tiers");
    assert_eq!(bytes[0], bytes[1]);
}

/// Instruction cost is address-independent, so the timing engine gives
/// the makespan the func engines will see.
fn makespan(program: &Program) -> u64 {
    let slot = TaskSlot::LOWEST;
    let mut e = Engine::new(
        AccelConfig::paper_small(),
        InterruptStrategy::VirtualInstruction,
        TimingBackend::new(),
    );
    e.load(slot, program.clone()).unwrap();
    e.request_at(0, slot).unwrap();
    e.run().unwrap().completed_jobs[0].finish
}

fn lo_makespan() -> u64 {
    static CACHE: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    *CACHE.get_or_init(|| makespan(&lo_program()))
}

proptest! {
    #![proptest_config(prop_cases(8))]

    /// Randomized interrupt positions: wherever the high-priority request
    /// lands — including mid-layer, forcing a preempt/resume straight
    /// through a compiled run — both tiers observe identical worlds.
    #[test]
    fn tiers_identical_at_random_interrupt_positions(
        strategy_idx in 0usize..STRATEGIES.len(),
        frac1 in 0u64..1000,
        frac2 in 0u64..1000,
        threads in 1usize..3,
        seed in 0u64..1 << 48,
    ) {
        let strategy = STRATEGIES[strategy_idx];
        let span = lo_makespan();
        let requests = [
            (0u64, false),
            (span * frac1 / 1000, true),
            (span * frac2 / 1000, true),
        ];
        let t1 = assert_tiers_agree(strategy, &requests, threads, seed);
        prop_assert!(t1.counter("tier1.exec_layers") > 0);
    }
}

/// Sanity: the suite's own equality helper distinguishes different runs
/// (guards against a trivially-true comparison).
#[test]
fn observables_do_distinguish_runs() {
    let (lo, hi) = (lo_program(), hi_program());
    let (a, _) = run_tier(
        ExecTier::Tier1,
        InterruptStrategy::VirtualInstruction,
        &lo,
        &hi,
        &[(0, false)],
        1,
        1,
    );
    let (b, _) = run_tier(
        ExecTier::Tier1,
        InterruptStrategy::VirtualInstruction,
        &lo,
        &hi,
        &[(0, false)],
        1,
        2, // different seed → different weights → different outputs
    );
    assert_ne!(a.outputs, b.outputs);
}
