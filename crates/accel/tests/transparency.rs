//! The headline correctness property of INCA: an interrupted-and-resumed
//! low-priority network produces *bit-identical* output to an
//! uninterrupted run, under every interrupt strategy, at every interrupt
//! position.
//!
//! A straight-line golden reference executor (no tiling, no instructions)
//! provides ground truth for the uninterrupted result.

use inca_accel::{AccelConfig, DdrImage, Engine, FuncBackend, InterruptStrategy, TimingBackend};
use inca_compiler::Compiler;
use inca_isa::{LayerKind, LayerMeta, PoolKind, Program, TaskSlot};
use inca_model::{zoo, Shape3};

/// Golden model: executes the lowered layers directly against an image.
fn reference_run(program: &Program, image: &mut DdrImage) {
    for meta in &program.layers {
        let out = reference_layer(meta, image);
        let bytes: Vec<u8> = out.iter().map(|&v| v as u8).collect();
        image.write(meta.output_addr, &bytes);
    }
}

fn read_plane(image: &DdrImage, addr: u64, c: u32, h: u32, w: u32) -> Vec<i8> {
    image.read(addr, u64::from(c) * u64::from(h) * u64::from(w)).iter().map(|&b| b as i8).collect()
}

fn finalize(acc: i64, shift: u8, relu: bool) -> i8 {
    let mut x = acc >> shift;
    if relu {
        x = x.max(0);
    }
    x.clamp(-128, 127) as i8
}

#[allow(clippy::too_many_lines)]
fn reference_layer(meta: &LayerMeta, image: &DdrImage) -> Vec<i8> {
    let (ci, hi, wi) = (meta.in_shape.c, meta.in_shape.h, meta.in_shape.w);
    let (co, ho, wo) = (meta.out_shape.c, meta.out_shape.h, meta.out_shape.w);
    let input = read_plane(image, meta.input_addr, ci, hi, wi);
    let at = |c: u32, y: i64, x: i64| -> i64 {
        if y < 0 || x < 0 || y >= i64::from(hi) || x >= i64::from(wi) {
            0
        } else {
            i64::from(input[((c as i64 * i64::from(hi) + y) * i64::from(wi) + x) as usize])
        }
    };
    let k = i64::from(meta.kind.kernel());
    let s = i64::from(meta.kind.stride());
    let p = i64::from(meta.kind.pad());
    let mut out = vec![0i8; (co * ho * wo) as usize];
    let oidx = |c: u32, y: u32, x: u32| ((c * ho + y) * wo + x) as usize;

    match meta.kind {
        LayerKind::Conv { .. } => {
            let weights = image.read(meta.weight_addr, meta.weight_bytes);
            for oc in 0..co {
                for y in 0..ho {
                    for x in 0..wo {
                        let mut acc = 0i64;
                        for ic in 0..ci {
                            for ky in 0..k {
                                for kx in 0..k {
                                    let wv =
                                        weights[(((u64::from(oc) * u64::from(ci) + u64::from(ic))
                                            * k as u64
                                            + ky as u64)
                                            * k as u64
                                            + kx as u64)
                                            as usize] as i8;
                                    acc += i64::from(wv)
                                        * at(
                                            ic,
                                            i64::from(y) * s - p + ky,
                                            i64::from(x) * s - p + kx,
                                        );
                                }
                            }
                        }
                        out[oidx(oc, y, x)] = finalize(acc, meta.quant_shift, meta.relu);
                    }
                }
            }
        }
        LayerKind::DwConv { .. } => {
            let weights = image.read(meta.weight_addr, meta.weight_bytes);
            for c in 0..co {
                for y in 0..ho {
                    for x in 0..wo {
                        let mut acc = 0i64;
                        for ky in 0..k {
                            for kx in 0..k {
                                let wv = weights[((u64::from(c) * k as u64 + ky as u64) * k as u64
                                    + kx as u64)
                                    as usize] as i8;
                                acc += i64::from(wv)
                                    * at(c, i64::from(y) * s - p + ky, i64::from(x) * s - p + kx);
                            }
                        }
                        out[oidx(c, y, x)] = finalize(acc, meta.quant_shift, meta.relu);
                    }
                }
            }
        }
        LayerKind::Pool { kind, .. } => {
            for c in 0..co {
                for y in 0..ho {
                    for x in 0..wo {
                        let mut max = i64::MIN;
                        let mut sum = 0i64;
                        let mut count = 0i64;
                        for ky in 0..k {
                            for kx in 0..k {
                                let iy = i64::from(y) * s - p + ky;
                                let ix = i64::from(x) * s - p + kx;
                                if iy < 0 || ix < 0 || iy >= i64::from(hi) || ix >= i64::from(wi) {
                                    continue;
                                }
                                let v = at(c, iy, ix);
                                max = max.max(v);
                                sum += v;
                                count += 1;
                            }
                        }
                        let v = match kind {
                            PoolKind::Max => {
                                if count == 0 {
                                    0
                                } else {
                                    max
                                }
                            }
                            PoolKind::Avg => {
                                if count == 0 {
                                    0
                                } else {
                                    sum / count
                                }
                            }
                            PoolKind::Gem { .. } => unreachable!(),
                        };
                        out[oidx(c, y, x)] = finalize(v, 0, false);
                    }
                }
            }
        }
        LayerKind::GlobalPool { kind } => {
            let n = i64::from(hi) * i64::from(wi);
            for c in 0..co {
                let mut sum = 0i64;
                let mut powered = 0f64;
                let mut max = i64::MIN;
                for y in 0..hi {
                    for x in 0..wi {
                        let v = at(c, i64::from(y), i64::from(x));
                        sum += v;
                        max = max.max(v);
                        if let PoolKind::Gem { p } = kind {
                            powered += f64::from(v.max(0) as i32).powi(i32::from(p));
                        }
                    }
                }
                let v = match kind {
                    PoolKind::Avg => sum / n.max(1),
                    PoolKind::Max => max.max(0),
                    PoolKind::Gem { p } => {
                        (powered / n.max(1) as f64).powf(1.0 / f64::from(p)).round() as i64
                    }
                };
                out[oidx(c, 0, 0)] = finalize(v, 0, false);
            }
        }
        LayerKind::Add => {
            let b = read_plane(image, meta.input2_addr.expect("add input2"), ci, hi, wi);
            for i in 0..out.len() {
                out[i] =
                    finalize(i64::from(input[i]) + i64::from(b[i]), meta.quant_shift, meta.relu);
            }
        }
        LayerKind::FullyConnected => {
            let weights = image.read(meta.weight_addr, meta.weight_bytes);
            for oc in 0..co {
                let mut acc = 0i64;
                for ic in 0..ci {
                    let wv =
                        weights[(u64::from(oc) * u64::from(ci) + u64::from(ic)) as usize] as i8;
                    acc += i64::from(wv) * i64::from(input[ic as usize]);
                }
                out[oidx(oc, 0, 0)] = finalize(acc, meta.quant_shift, meta.relu);
            }
        }
    }
    out
}

/// Small, distributive test input so accumulators stay far from i32
/// saturation (the tiled and golden sums then agree exactly).
fn test_input(program: &Program) -> (u64, Vec<u8>) {
    let first = &program.layers[0];
    let addr = first.input_addr;
    let n = first.in_shape.bytes();
    let data: Vec<u8> = (0..n).map(|i| ((i * 7 + 3) % 15) as u8).collect();
    (addr, data)
}

fn image_with_input(program: &Program, seed: u64) -> DdrImage {
    let mut img = DdrImage::for_program(program, seed);
    let (addr, data) = test_input(program);
    img.write(addr, &data);
    img
}

fn all_outputs(program: &Program, image: &DdrImage) -> Vec<Vec<i8>> {
    program.layers.iter().map(|m| image.read_output(m)).collect()
}

fn run_uninterrupted(program: &Program, seed: u64) -> Vec<Vec<i8>> {
    run_uninterrupted_with(FuncBackend::new(), program, seed)
}

fn run_uninterrupted_with(mut backend: FuncBackend, program: &Program, seed: u64) -> Vec<Vec<i8>> {
    let slot = TaskSlot::new(3).unwrap();
    backend.install_image(slot, image_with_input(program, seed));
    let mut e =
        Engine::new(AccelConfig::paper_small(), InterruptStrategy::VirtualInstruction, backend);
    e.load(slot, program.clone()).unwrap();
    e.request_at(0, slot).unwrap();
    e.run().unwrap();
    all_outputs(program, e.backend().image(slot).unwrap())
}

fn tiny_fire() -> inca_model::Network {
    // A minimal SqueezeNet-style fire module exercising Concat lowering.
    let mut b = inca_model::NetworkBuilder::new("tiny_fire", Shape3::new(3, 24, 24));
    let x = b.input_id();
    let c = b.conv("stem", x, 8, 3, 2, 1, true).unwrap();
    let s = b.conv("squeeze", c, 4, 1, 1, 0, true).unwrap();
    let e1 = b.conv("expand1", s, 8, 1, 1, 0, true).unwrap();
    let e3 = b.conv("expand3", s, 8, 3, 1, 1, true).unwrap();
    let cat = b.concat("cat", e1, e3).unwrap();
    let out = b.conv("head", cat, 8, 1, 1, 0, false).unwrap();
    b.finish(vec![out]).unwrap()
}

fn networks_under_test() -> Vec<inca_model::Network> {
    vec![
        zoo::tiny(Shape3::new(3, 32, 32)).unwrap(),
        zoo::mobilenet_v1(Shape3::new(3, 32, 32)).unwrap(),
        tiny_fire(),
    ]
}

#[test]
fn functional_backend_matches_golden_reference() {
    for net in networks_under_test() {
        let c = Compiler::new(AccelConfig::paper_small().arch);
        let program = c.compile_vi(&net).unwrap();
        let sim = run_uninterrupted(&program, 0xDEAD_BEEF);
        let mut golden_img = image_with_input(&program, 0xDEAD_BEEF);
        reference_run(&program, &mut golden_img);
        let golden = all_outputs(&program, &golden_img);
        for (i, (a, b)) in sim.iter().zip(golden.iter()).enumerate() {
            assert_eq!(
                a, b,
                "layer {} `{}` of {} differs from golden reference",
                i, program.layers[i].name, net.name
            );
        }
    }
}

/// Runs the low-priority program with a high-priority task requested at
/// `request_cycle`, returns the low task's outputs.
fn run_interrupted(
    strategy: InterruptStrategy,
    lo_program: &Program,
    hi_program: &Program,
    request_cycle: u64,
    seed: u64,
) -> (Vec<Vec<i8>>, usize) {
    run_interrupted_with(FuncBackend::new(), strategy, lo_program, hi_program, request_cycle, seed)
}

fn run_interrupted_with(
    mut backend: FuncBackend,
    strategy: InterruptStrategy,
    lo_program: &Program,
    hi_program: &Program,
    request_cycle: u64,
    seed: u64,
) -> (Vec<Vec<i8>>, usize) {
    let hi = TaskSlot::new(1).unwrap();
    let lo = TaskSlot::new(3).unwrap();
    backend.install_image(lo, image_with_input(lo_program, seed));
    backend.install_image(hi, image_with_input(hi_program, seed ^ 0x1234));
    let mut e = Engine::new(AccelConfig::paper_small(), strategy, backend);
    e.load(lo, lo_program.clone()).unwrap();
    e.load(hi, hi_program.clone()).unwrap();
    e.request_at(0, lo).unwrap();
    e.request_at(request_cycle, hi).unwrap();
    let report = e.run().unwrap();
    assert_eq!(report.completed_jobs.len(), 2);
    (all_outputs(lo_program, e.backend().image(lo).unwrap()), report.interrupts.len())
}

#[test]
fn interrupt_transparency_across_strategies_and_positions() {
    let arch = AccelConfig::paper_small().arch;
    let c = Compiler::new(arch);
    let lo_net = zoo::tiny(Shape3::new(3, 32, 32)).unwrap();
    let hi_net = zoo::tiny(Shape3::new(3, 16, 16)).unwrap();
    let lo_vi = c.compile_vi(&lo_net).unwrap();
    let lo_orig = c.compile(&lo_net).unwrap();
    let hi_vi = c.compile_vi(&hi_net).unwrap();
    let expected = run_uninterrupted(&lo_vi, 42);

    // Find the uninterrupted makespan to spread request cycles across it.
    let makespan = {
        let slot = TaskSlot::new(3).unwrap();
        let mut e = Engine::new(
            AccelConfig::paper_small(),
            InterruptStrategy::VirtualInstruction,
            TimingBackend::new(),
        );
        e.load(slot, lo_vi.clone()).unwrap();
        e.request_at(0, slot).unwrap();
        e.run().unwrap().completed_jobs[0].finish
    };

    let mut total_preemptions = 0usize;
    for i in 0..12 {
        let request = makespan * (2 * i + 1) / 24;
        for (strategy, lo_prog) in [
            (InterruptStrategy::VirtualInstruction, &lo_vi),
            (InterruptStrategy::LayerByLayer, &lo_orig),
            (InterruptStrategy::CpuLike, &lo_orig),
        ] {
            let (outputs, preemptions) = run_interrupted(strategy, lo_prog, &hi_vi, request, 42);
            total_preemptions += preemptions;
            for (l, (a, b)) in outputs.iter().zip(expected.iter()).enumerate() {
                assert_eq!(
                    a, b,
                    "{strategy}: layer {l} differs after interrupt at cycle {request}"
                );
            }
        }
    }
    assert!(
        total_preemptions > 20,
        "expected most positions to actually preempt, got {total_preemptions}"
    );
}

#[test]
fn save_patching_writes_no_byte_twice() {
    // DESIGN.md invariant 4: the bytes written to the victim's DDR image
    // are identical with and without interrupts — VIR_SAVE flushes early,
    // and the patched SAVE skips exactly what was flushed.
    let arch = AccelConfig::paper_small().arch;
    let c = Compiler::new(arch);
    let lo_net = zoo::tiny(Shape3::new(3, 32, 32)).unwrap();
    let hi_net = zoo::tiny(Shape3::new(3, 16, 16)).unwrap();
    let lo_prog = c.compile_vi(&lo_net).unwrap();
    let hi_prog = c.compile_vi(&hi_net).unwrap();
    let lo = TaskSlot::new(3).unwrap();
    let hi = TaskSlot::new(1).unwrap();

    let baseline = {
        let mut backend = FuncBackend::new();
        backend.install_image(lo, image_with_input(&lo_prog, 21));
        let mut e =
            Engine::new(AccelConfig::paper_small(), InterruptStrategy::VirtualInstruction, backend);
        e.load(lo, lo_prog.clone()).unwrap();
        e.request_at(0, lo).unwrap();
        e.run().unwrap();
        e.backend().bytes_written(lo)
    };
    // Sanity: a full pass writes every activation byte exactly once.
    let expected: u64 = lo_prog.layers.iter().map(|m| m.out_shape.bytes()).sum();
    assert_eq!(baseline, expected);

    for k in 1..10 {
        let mut backend = FuncBackend::new();
        backend.install_image(lo, image_with_input(&lo_prog, 21));
        backend.install_image(hi, image_with_input(&hi_prog, 22));
        let mut e =
            Engine::new(AccelConfig::paper_small(), InterruptStrategy::VirtualInstruction, backend);
        e.load(lo, lo_prog.clone()).unwrap();
        e.load(hi, hi_prog.clone()).unwrap();
        e.request_at(0, lo).unwrap();
        e.request_at(k * 1_500, hi).unwrap();
        e.run().unwrap();
        assert_eq!(
            e.backend().bytes_written(lo),
            baseline,
            "interrupt at {} duplicated or dropped output bytes",
            k * 1_500
        );
    }
}

#[test]
fn nested_preemption_is_transparent() {
    // Three tasks: slot 3 preempted by slot 2, slot 2 preempted by slot 1.
    let arch = AccelConfig::paper_small().arch;
    let c = Compiler::new(arch);
    let n3 = zoo::tiny(Shape3::new(3, 32, 32)).unwrap();
    let n2 = zoo::tiny(Shape3::new(3, 24, 24)).unwrap();
    let n1 = zoo::tiny(Shape3::new(3, 16, 16)).unwrap();
    let p3 = c.compile_vi(&n3).unwrap();
    let p2 = c.compile_vi(&n2).unwrap();
    let p1 = c.compile_vi(&n1).unwrap();

    let exp3 = run_uninterrupted(&p3, 7);
    let exp2 = run_uninterrupted(&p2, 8);
    let exp1 = run_uninterrupted(&p1, 9);

    let (s1, s2, s3) =
        (TaskSlot::new(1).unwrap(), TaskSlot::new(2).unwrap(), TaskSlot::new(3).unwrap());
    let mut backend = FuncBackend::new();
    backend.install_image(s3, image_with_input(&p3, 7));
    backend.install_image(s2, image_with_input(&p2, 8));
    backend.install_image(s1, image_with_input(&p1, 9));
    let mut e =
        Engine::new(AccelConfig::paper_small(), InterruptStrategy::VirtualInstruction, backend);
    e.load(s3, p3.clone()).unwrap();
    e.load(s2, p2.clone()).unwrap();
    e.load(s1, p1.clone()).unwrap();
    // Makespans (small accel): tiny32 ≈ 15.4k, tiny24 ≈ 10.1k, tiny16 ≈ 5.8k
    // cycles — so slot 2 preempts slot 3 mid-run, then slot 1 preempts
    // slot 2 while slot 3 is still suspended.
    e.request_at(0, s3).unwrap();
    e.request_at(4_000, s2).unwrap();
    e.request_at(7_000, s1).unwrap();
    let report = e.run().unwrap();
    assert_eq!(report.completed_jobs.len(), 3);
    assert!(report.interrupts.len() >= 2, "expected nested preemptions");

    assert_eq!(all_outputs(&p3, e.backend().image(s3).unwrap()), exp3);
    assert_eq!(all_outputs(&p2, e.backend().image(s2).unwrap()), exp2);
    assert_eq!(all_outputs(&p1, e.backend().image(s1).unwrap()), exp1);
}

#[test]
fn channel_outer_loop_order_is_also_transparent() {
    use inca_compiler::{CompileOptions, LoopOrder};
    let arch = AccelConfig::paper_small().arch;
    let opts = CompileOptions::default().with_loop_order(LoopOrder::ChannelOuter);
    let c = Compiler::with_options(arch, opts);
    let lo_net = zoo::tiny(Shape3::new(3, 32, 32)).unwrap();
    let hi_net = zoo::tiny(Shape3::new(3, 16, 16)).unwrap();
    let lo = c.compile_vi(&lo_net).unwrap();
    let hi = c.compile_vi(&hi_net).unwrap();
    let expected = run_uninterrupted(&lo, 3);
    for request in [3_000u64, 11_000, 23_000, 47_000] {
        let (outputs, _) =
            run_interrupted(InterruptStrategy::VirtualInstruction, &lo, &hi, request, 3);
        assert_eq!(outputs, expected, "request at {request}");
    }
}

#[test]
fn transparency_holds_at_explicit_thread_counts() {
    // The fast kernel's worker pool must not affect any output byte:
    // uninterrupted and interrupted runs agree with the golden reference
    // at thread counts 1, 2 and 8 alike.
    let c = Compiler::new(AccelConfig::paper_small().arch);
    let lo_net = zoo::tiny(Shape3::new(3, 32, 32)).unwrap();
    let hi_net = zoo::tiny(Shape3::new(3, 16, 16)).unwrap();
    let lo_prog = c.compile_vi(&lo_net).unwrap();
    let hi_prog = c.compile_vi(&hi_net).unwrap();

    let mut golden_img = image_with_input(&lo_prog, 42);
    reference_run(&lo_prog, &mut golden_img);
    let expected = all_outputs(&lo_prog, &golden_img);

    for threads in [1usize, 2, 8] {
        let plain = run_uninterrupted_with(FuncBackend::with_threads(threads), &lo_prog, 42);
        assert_eq!(plain, expected, "uninterrupted run differs at threads={threads}");
        for request in [2_000u64, 9_000] {
            let (outputs, _) = run_interrupted_with(
                FuncBackend::with_threads(threads),
                InterruptStrategy::VirtualInstruction,
                &lo_prog,
                &hi_prog,
                request,
                42,
            );
            assert_eq!(
                outputs, expected,
                "interrupted run differs at threads={threads}, request={request}"
            );
        }
    }
}
