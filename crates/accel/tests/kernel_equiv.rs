//! Property test: the staged, multi-threaded fast CALC kernels are
//! bit-identical to the retained naive `reference` kernel.
//!
//! Random single-layer programs (Conv/DwConv/MaxPool/AvgPool with random
//! kernel/stride/pad and random row/channel/input-channel tilings) are run
//! through `FuncBackend` with the reference kernel and with the fast
//! kernel at thread counts {1, 2, 8}; every output byte must match.
//!
//! Because the reference accumulates in exact `i64` while the fast path
//! uses wrapping `i32`, equality here is also the "no silent overflow"
//! assertion of DESIGN.md §2: with int8 operands the per-instruction
//! partial sums provably fit an `i32`, and any regression of that bound
//! would show up as a mismatch.
//!
//! A deterministic companion test runs whole compiled networks (covering
//! GlobalPool, Add, FullyConnected, Concat lowering and the compiler's
//! real tilings) through both kernels.

use inca_accel::{AccelConfig, Backend, CalcKernel, DdrImage, FuncBackend};
use inca_compiler::Compiler;
use inca_isa::{
    DdrRange, Instr, LayerKind, LayerMeta, MemoryMap, Opcode, PoolKind, Program, Shape3, TaskSlot,
    Tile,
};
use inca_model::zoo;
use proptest::prelude::*;

/// splitmix64 — deterministic data/tiling stream from a proptest seed.
fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed.wrapping_add(i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Splits `0..total` into contiguous random-length `(start, len)` chunks.
fn splits(total: u16, seed: u64) -> Vec<(u16, u16)> {
    let mut out = Vec::new();
    let mut start = 0u16;
    let mut i = 0u64;
    while start < total {
        let remaining = u64::from(total - start);
        let len = 1 + (mix(seed, i) % remaining) as u16;
        out.push((start, len));
        start += len;
        i += 1;
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn build_case(
    kind_sel: u8,
    k: u8,
    s: u8,
    p: u8,
    h_in: u32,
    w_in: u32,
    c_in: u32,
    c_out: u32,
    quant_shift: u8,
    relu: bool,
    data_seed: u64,
    tile_seed: u64,
) -> (Program, DdrImage) {
    // Ensure at least one output row/column exists.
    let min_dim = u32::from(k).saturating_sub(2 * u32::from(p)).max(1);
    let h_in = h_in.max(min_dim);
    let w_in = w_in.max(min_dim);
    let out_dim = |x: u32| (x + 2 * u32::from(p) - u32::from(k)) / u32::from(s) + 1;
    let (h_out, w_out) = (out_dim(h_in), out_dim(w_in));

    let (kind, c_out) = match kind_sel {
        0 => (LayerKind::Conv { kernel: k, stride: s, pad: p }, c_out),
        1 => (LayerKind::DwConv { kernel: k, stride: s, pad: p }, c_in),
        2 => (LayerKind::Pool { kind: PoolKind::Max, kernel: k, stride: s, pad: p }, c_in),
        _ => (LayerKind::Pool { kind: PoolKind::Avg, kernel: k, stride: s, pad: p }, c_in),
    };
    let k2 = u64::from(k) * u64::from(k);
    let weight_bytes = match kind {
        LayerKind::Conv { .. } => u64::from(c_out) * u64::from(c_in) * k2,
        LayerKind::DwConv { .. } => u64::from(c_in) * k2,
        _ => 0,
    };
    let in_shape = Shape3::new(c_in, h_in, w_in);
    let out_shape = Shape3::new(c_out, h_out, w_out);
    let input_bytes = in_shape.bytes();
    let weight_addr = input_bytes;
    let output_addr = weight_addr + weight_bytes;
    let total = output_addr + out_shape.bytes();

    let meta = LayerMeta {
        id: 0,
        name: format!("rand_{kind_sel}"),
        kind,
        in_shape,
        out_shape,
        input_addr: 0,
        input2_addr: None,
        output_addr,
        weight_addr,
        weight_bytes,
        quant_shift,
        relu,
    };
    assert!(meta.shapes_consistent(), "generator produced inconsistent shapes: {meta:?}");

    let mut image = DdrImage::new(total);
    for addr in 0..weight_addr + weight_bytes {
        image.write(addr, &[(mix(data_seed, addr) >> 33) as u8]);
    }

    let mut b = Program::builder("kernel_equiv");
    b.layers.push(meta);
    // Whole input and (if any) whole weights up front.
    b.push(Instr::transfer(
        Opcode::LoadD,
        0,
        0,
        Tile::rows_chans(0, h_in as u16, 0, c_in as u16),
        DdrRange::new(0, input_bytes as u32),
    ));
    if weight_bytes > 0 {
        b.push(Instr::transfer(
            Opcode::LoadW,
            0,
            0,
            Tile::new(0, 0, 0, c_out as u16, 0, c_in as u16),
            DdrRange::new(weight_addr, weight_bytes as u32),
        ));
    }
    // Random row × channel tiling; conv additionally splits input channels
    // into a CalcI…CalcF accumulation chain per blob.
    let mut blob = 0u32;
    for &(h0, rows) in &splits(h_out as u16, mix(tile_seed, 1)) {
        for &(c0, chans) in &splits(c_out as u16, mix(tile_seed, 2)) {
            if matches!(kind, LayerKind::Conv { .. }) {
                let ic_splits = splits(c_in as u16, mix(tile_seed, 3 + u64::from(blob)));
                let last = ic_splits.len() - 1;
                for (i, &(ic0, ics)) in ic_splits.iter().enumerate() {
                    let op = if i == last { Opcode::CalcF } else { Opcode::CalcI };
                    b.push(Instr::calc(op, 0, blob, Tile::new(h0, rows, c0, chans, ic0, ics)));
                }
            } else {
                b.push(Instr::calc(
                    Opcode::CalcF,
                    0,
                    blob,
                    Tile::new(h0, rows, c0, chans, 0, c_in as u16),
                ));
            }
            let sid = b.alloc_save_id();
            let addr = output_addr
                + u64::from(c0) * u64::from(h_out) * u64::from(w_out)
                + u64::from(h0) * u64::from(w_out);
            b.push(
                Instr::transfer(
                    Opcode::Save,
                    0,
                    blob,
                    Tile::rows_chans(h0, rows, c0, chans),
                    DdrRange::new(addr, u32::from(chans) * u32::from(rows) * w_out),
                )
                .with_save_id(sid),
            );
            blob += 1;
        }
    }
    b.memory = MemoryMap {
        weights_base: weight_addr,
        weights_bytes: weight_bytes,
        activations_base: 0,
        activations_bytes: total,
        ..MemoryMap::default()
    };
    (b.build().expect("generated program validates"), image)
}

/// Runs every instruction of a single-layer program directly through the
/// backend and returns the layer's output feature map.
fn run(mut backend: FuncBackend, program: &Program, image: &DdrImage) -> Vec<i8> {
    let slot = TaskSlot::new(3).unwrap();
    backend.install_image(slot, image.clone());
    backend.on_switch(slot);
    for instr in &program.instrs {
        backend
            .execute(slot, program, instr)
            .unwrap_or_else(|e| panic!("{:?} failed on:\n{}", e, program.listing()));
    }
    backend.image(slot).unwrap().read_output(&program.layers[0])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    fn fast_kernel_matches_reference_oracle(
        kind_sel in 0u8..4,
        k in prop::sample::select(vec![1u8, 2, 3, 5]),
        s in 1u8..=3,
        p in 0u8..=2,
        h_in in 1u32..=12,
        w_in in 1u32..=12,
        c_in in 1u32..=4,
        c_out in 1u32..=5,
        quant_shift in 0u8..=6,
        relu in any::<bool>(),
        data_seed in any::<u64>(),
        tile_seed in any::<u64>(),
    ) {
        let (program, image) = build_case(
            kind_sel, k, s, p, h_in, w_in, c_in, c_out, quant_shift, relu, data_seed, tile_seed,
        );
        let want = run(FuncBackend::with_kernel(CalcKernel::Reference), &program, &image);
        for threads in [1usize, 2, 8] {
            let got = run(FuncBackend::with_threads(threads), &program, &image);
            prop_assert_eq!(
                &got,
                &want,
                "fast kernel (threads={}) diverged from reference on kind_sel={} k={} s={} p={}",
                threads, kind_sel, k, s, p
            );
        }
    }
}

/// A small residual network exercising the layer kinds the proptest
/// leaves out: Add (shortcut join), global pooling and FullyConnected.
fn tiny_residual() -> inca_model::Network {
    let mut b = inca_model::NetworkBuilder::new("tiny_residual", Shape3::new(3, 24, 24));
    let x = b.input_id();
    let stem = b.conv("stem", x, 8, 3, 2, 1, true).unwrap();
    let c1 = b.conv("c1", stem, 8, 3, 1, 1, true).unwrap();
    let join = b.add("join", stem, c1, true).unwrap();
    let g = b.gem_pool("gap", join, 1).unwrap();
    let fc = b.fully_connected("fc", g, 10, false).unwrap();
    b.finish(vec![fc]).unwrap()
}

/// Whole compiled networks — covering GlobalPool, Add, FullyConnected,
/// Concat lowering and the compiler's real tilings — produce identical
/// outputs under the reference kernel and the fast kernel at thread
/// counts 1, 2 and the default (available parallelism).
#[test]
fn full_networks_match_reference_kernel_at_all_thread_counts() {
    let compiler = Compiler::new(AccelConfig::paper_small().arch);
    let nets = [
        zoo::tiny(Shape3::new(3, 32, 32)).unwrap(),
        zoo::mobilenet_v1(Shape3::new(3, 32, 32)).unwrap(),
        tiny_residual(),
    ];
    for net in nets {
        let program = compiler.compile_vi(&net).unwrap();
        let seed = 0x5EED_0001;
        let run_net = |backend: FuncBackend| -> Vec<Vec<i8>> {
            let slot = TaskSlot::new(3).unwrap();
            let mut backend = backend;
            let mut image = DdrImage::for_program(&program, seed);
            let first = &program.layers[0];
            let input: Vec<u8> =
                (0..first.in_shape.bytes()).map(|i| ((i * 7 + 3) % 15) as u8).collect();
            image.write(first.input_addr, &input);
            backend.install_image(slot, image);
            backend.on_switch(slot);
            for instr in &program.instrs {
                if !instr.op.is_virtual() {
                    backend.execute(slot, &program, instr).unwrap();
                }
            }
            let img = backend.image(slot).unwrap();
            program.layers.iter().map(|m| img.read_output(m)).collect()
        };
        let want = run_net(FuncBackend::with_kernel(CalcKernel::Reference));
        for backend in
            [FuncBackend::with_threads(1), FuncBackend::with_threads(2), FuncBackend::new()]
        {
            let threads = backend.threads();
            let got = run_net(backend);
            for (l, (a, b)) in got.iter().zip(want.iter()).enumerate() {
                assert_eq!(
                    a, b,
                    "{}: layer {l} `{}` differs between fast (threads={threads}) and reference",
                    net.name, program.layers[l].name
                );
            }
        }
    }
}
