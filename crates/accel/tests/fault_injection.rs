//! Fault injection: verify that the functional backend is a real
//! *verifier* — if the VI machinery is broken (missing restore
//! instructions, wrong SaveID wiring, interrupt points at illegal
//! positions), the simulation either errors loudly or demonstrably
//! corrupts output, rather than passing silently.

use inca_accel::{
    AccelConfig, DdrImage, Engine, FuncBackend, InterruptStrategy, SimError, TimingBackend,
};
use inca_compiler::Compiler;
use inca_isa::{Instr, Opcode, Program, TaskSlot};
use inca_model::{zoo, Shape3};

/// A network whose conv layers have several blobs per tile (so interrupt
/// points carry real VIR_SAVE/VIR_LOAD work on the small accelerator).
fn victim_net() -> inca_model::Network {
    let mut b = inca_model::NetworkBuilder::new("victim", Shape3::new(16, 24, 24));
    let x = b.input_id();
    let c1 = b.conv("c1", x, 32, 3, 1, 1, true).unwrap();
    let c2 = b.conv("c2", c1, 32, 3, 1, 1, false).unwrap();
    b.finish(vec![c2]).unwrap()
}

fn compile_vi() -> Program {
    Compiler::new(AccelConfig::paper_small().arch).compile_vi(&victim_net()).unwrap()
}

fn hi_program() -> Program {
    Compiler::new(AccelConfig::paper_small().arch)
        .compile_vi(&zoo::tiny(Shape3::new(3, 16, 16)).unwrap())
        .unwrap()
}

fn span_of(p: &Program) -> u64 {
    let slot = TaskSlot::LOWEST;
    let mut e = Engine::new(
        AccelConfig::paper_small(),
        InterruptStrategy::VirtualInstruction,
        TimingBackend::new(),
    );
    e.load(slot, p.clone()).unwrap();
    e.request_at(0, slot).unwrap();
    e.run().unwrap().completed_jobs[0].finish
}

/// Re-assembles a program with `mutate` applied to each instruction
/// (return `None` to drop it); interrupt points are rebuilt from the
/// stream.
fn rebuild(p: &Program, mutate: impl Fn(&Instr) -> Option<Instr>) -> Program {
    let mut b = Program::builder(p.name.clone());
    b.layers = p.layers.clone();
    b.memory = p.memory.clone();
    for i in &p.instrs {
        if let Some(m) = mutate(i) {
            b.push(m);
        }
    }
    b.rebuild_points_from_stream();
    b.build().unwrap()
}

/// Runs the victim with an interrupt at `request`; returns the last
/// layer's output or the simulation error.
fn run_interrupted(victim: &Program, request: u64) -> Result<Vec<i8>, SimError> {
    let (hi, lo) = (TaskSlot::new(1).unwrap(), TaskSlot::new(3).unwrap());
    let hi_prog = hi_program();
    let mut backend = FuncBackend::new();
    backend.install_image(lo, DdrImage::for_program(victim, 11));
    backend.install_image(hi, DdrImage::for_program(&hi_prog, 12));
    let mut e =
        Engine::new(AccelConfig::paper_small(), InterruptStrategy::VirtualInstruction, backend);
    e.load(lo, victim.clone()).unwrap();
    e.load(hi, hi_prog).unwrap();
    e.request_at(0, lo).unwrap();
    e.request_at(request, hi).unwrap();
    e.run()?;
    Ok(e.backend().image(lo).unwrap().read_output(victim.layers.last().unwrap()))
}

#[test]
fn missing_vir_load_d_is_caught() {
    let good = compile_vi();
    let broken = rebuild(&good, |i| (i.op != Opcode::VirLoadD).then_some(*i));
    assert!(broken.instrs.len() < good.instrs.len(), "expected VIR_LOAD_Ds to exist");
    let span = span_of(&good);
    let mut caught = false;
    for k in 1..20 {
        match run_interrupted(&broken, span * k / 20) {
            Err(SimError::MissingData { .. }) => {
                caught = true;
                break;
            }
            Err(other) => panic!("unexpected error {other}"),
            Ok(_) => {}
        }
    }
    assert!(caught, "dropping VIR_LOAD_D must surface as MissingData");
}

#[test]
fn wrong_save_id_wiring_is_caught() {
    let good = compile_vi();
    // Break the SaveID linkage: VIR_SAVEs point at a save that will never
    // execute, so the real SAVE is not patched and reads blobs that were
    // flushed and dropped on the context switch.
    let broken = rebuild(&good, |i| {
        let mut i = *i;
        if i.op == Opcode::VirSave {
            i.save_id += 10_000;
        }
        Some(i)
    });
    let span = span_of(&good);
    let mut caught = false;
    for k in 1..20 {
        match run_interrupted(&broken, span * k / 20) {
            Err(SimError::MissingOutput { .. }) => {
                caught = true;
                break;
            }
            Err(other) => panic!("unexpected error {other}"),
            Ok(_) => {}
        }
    }
    assert!(caught, "breaking SaveID wiring must surface as MissingOutput");
}

#[test]
fn interrupt_point_after_calc_i_corrupts_or_errors() {
    // The paper's §IV-C: interrupting at CALC_I would need intermediate
    // accumulators backed up. Injecting an (illegal) empty interrupt point
    // right after a CALC_I must therefore break transparency — either an
    // explicit buffer miss or corrupted output, never a silent pass.
    let good = compile_vi();
    let reference = run_interrupted(&good, u64::MAX >> 1).unwrap(); // no interrupt taken

    // Build a program whose only "interrupt point" follows a CALC_I: keep
    // the stream, but inject a bogus empty virtual group (a VIR_LOAD_W of
    // zero bytes) right after the first CALC_I so a point is rebuilt there.
    let mut b = Program::builder(good.name.clone());
    b.layers = good.layers.clone();
    b.memory = good.memory.clone();
    let mut injected = false;
    for i in &good.instrs {
        if i.op.is_virtual() {
            continue; // strip legitimate points
        }
        b.push(*i);
        if !injected && i.op == Opcode::CalcI {
            b.push(Instr::transfer(
                Opcode::VirLoadW,
                i.layer,
                i.blob,
                inca_isa::Tile::default(),
                inca_isa::DdrRange::EMPTY,
            ));
            injected = true;
        }
    }
    b.rebuild_points_from_stream();
    let broken = b.build().unwrap();
    assert!(injected);

    // Request early so the drain lands on the injected point.
    let outcome = run_interrupted(&broken, 1);
    match outcome {
        Err(
            SimError::MissingData { .. }
            | SimError::MissingOutput { .. }
            | SimError::MissingWeights { .. },
        ) => {}
        Ok(out) => assert_ne!(out, reference, "interrupting after CALC_I must not be transparent"),
        Err(other) => panic!("unexpected error {other}"),
    }
}

#[test]
fn reference_of_untouched_program_still_transparent() {
    // Control for the tests above: the unmodified program *is* transparent
    // at the same positions.
    let good = compile_vi();
    let span = span_of(&good);
    let reference = run_interrupted(&good, u64::MAX >> 1).unwrap();
    for k in 1..20 {
        let out = run_interrupted(&good, span * k / 20).unwrap();
        assert_eq!(out, reference, "position {k}/20");
    }
}
