//! Direct `CorePool` coverage: error paths (empty pool, out-of-range
//! core ids, per-core slot isolation), heterogeneous pools built from
//! pre-configured engines, and the occupancy/busy-cycles introspection
//! the serving layer's placement policies rely on.

use std::sync::Arc;

use inca_accel::{
    AccelConfig, CoreId, CorePool, Engine, InterruptStrategy, SimError, TimingBackend,
};
use inca_compiler::Compiler;
use inca_isa::{Program, TaskSlot};
use inca_model::{zoo, Shape3};

fn program_for(cfg: &AccelConfig, side: u32) -> Program {
    Compiler::new(cfg.arch).compile_vi(&zoo::tiny(Shape3::new(3, side, side)).unwrap()).unwrap()
}

#[test]
#[should_panic(expected = "at least one core")]
fn empty_pool_panics() {
    let _ = CorePool::new(
        0,
        AccelConfig::paper_big(),
        InterruptStrategy::NonPreemptive,
        TimingBackend::new,
    );
}

#[test]
#[should_panic(expected = "at least one core")]
fn empty_engine_pool_panics() {
    let _: CorePool<TimingBackend> = CorePool::from_engines(Vec::new());
}

#[test]
fn out_of_range_core_id_is_catchable() {
    let mut pool = CorePool::new(
        2,
        AccelConfig::paper_big(),
        InterruptStrategy::NonPreemptive,
        TimingBackend::new,
    );
    assert!(pool.try_core(CoreId(2)).is_none());
    assert!(pool.try_core_mut(CoreId(2)).is_none());
    assert!(pool.try_core(CoreId(usize::MAX)).is_none());
    assert!(pool.try_core(CoreId(1)).is_some());
    assert_eq!(pool.core_ids().collect::<Vec<_>>(), vec![CoreId(0), CoreId(1)]);
}

#[test]
#[should_panic(expected = "index out of bounds")]
fn busy_cycles_out_of_range_panics() {
    let pool = CorePool::new(
        1,
        AccelConfig::paper_big(),
        InterruptStrategy::NonPreemptive,
        TimingBackend::new,
    );
    let _ = pool.busy_cycles(CoreId(1));
}

#[test]
fn per_core_slot_isolation() {
    let cfg = AccelConfig::paper_big();
    let mut pool = CorePool::new(2, cfg, InterruptStrategy::NonPreemptive, TimingBackend::new);
    let slot = TaskSlot::new(1).unwrap();
    pool.load(CoreId(0), slot, program_for(&cfg, 16)).unwrap();
    // The program loaded on core 0 must not leak to core 1.
    assert!(pool.request_at(0, CoreId(0), slot).is_ok());
    assert!(matches!(pool.request_at(0, CoreId(1), slot), Err(SimError::EmptySlot(_))));
}

#[test]
fn mixed_config_pool_runs_both_cores() {
    // A heterogeneous pool: one big core (VI-preemptible) and one small
    // core (non-preemptive), each compiled against its own arch. The
    // pool-wide resource estimate is documented to follow core 0.
    let big = AccelConfig::paper_big();
    let small = AccelConfig::paper_small();
    let engines = vec![
        Engine::new(big, InterruptStrategy::VirtualInstruction, TimingBackend::new()),
        Engine::new(small, InterruptStrategy::NonPreemptive, TimingBackend::new()),
    ];
    let mut pool = CorePool::from_engines(engines);
    assert_eq!(pool.cores(), 2);

    let slot = TaskSlot::new(2).unwrap();
    pool.load(CoreId(0), slot, program_for(&big, 24)).unwrap();
    pool.load(CoreId(1), slot, program_for(&small, 24)).unwrap();
    pool.request_at(0, CoreId(0), slot).unwrap();
    pool.request_at(0, CoreId(1), slot).unwrap();
    let reports = pool.run().unwrap();
    assert_eq!(reports.len(), 2);
    assert_eq!(reports[0].completed_jobs.len(), 1);
    assert_eq!(reports[1].completed_jobs.len(), 1);
    // The same network on the narrower datapath takes longer.
    assert!(
        reports[1].completed_jobs[0].finish > reports[0].completed_jobs[0].finish,
        "small-arch core is slower on the same network"
    );
}

#[test]
fn busy_cycles_and_occupancy_reflect_partitioned_load() {
    let cfg = AccelConfig::paper_big();
    let mut pool = CorePool::new(3, cfg, InterruptStrategy::NonPreemptive, TimingBackend::new);
    let slot = TaskSlot::new(1).unwrap();
    let p = Arc::new(program_for(&cfg, 24));
    pool.load(CoreId(0), slot, Arc::clone(&p)).unwrap();
    pool.load(CoreId(1), slot, Arc::clone(&p)).unwrap();
    // Core 0 runs two back-to-back jobs (fully busy); core 1 runs the
    // same two jobs with a long idle gap between them (the engine clock
    // jumps across the gap, so idle time shows up in its elapsed time);
    // core 2 never works.
    pool.request_at(0, CoreId(0), slot).unwrap();
    pool.request_at(1, CoreId(0), slot).unwrap();
    pool.request_at(0, CoreId(1), slot).unwrap();
    pool.request_at(200_000, CoreId(1), slot).unwrap();
    pool.run().unwrap();

    let busy: Vec<u64> = pool.core_ids().map(|c| pool.busy_cycles(c)).collect();
    assert_eq!(busy[0], busy[1], "identical job pairs cost identical busy cycles");
    assert!(busy[0] > 0);
    assert_eq!(busy[2], 0, "the idle core did no work");
    let occ0 = pool.occupancy(CoreId(0));
    let occ1 = pool.occupancy(CoreId(1));
    assert!(occ0 > 0.99, "back-to-back jobs keep the core saturated, got {occ0}");
    assert!(occ1 < occ0, "the gap dilutes core 1's occupancy: {occ1} vs {occ0}");
    assert!(occ1 > 0.0);
    assert_eq!(pool.occupancy(CoreId(2)), 0.0);
}

#[test]
fn pool_now_is_the_furthest_core() {
    let cfg = AccelConfig::paper_big();
    let mut pool = CorePool::new(2, cfg, InterruptStrategy::NonPreemptive, TimingBackend::new);
    let slot = TaskSlot::new(1).unwrap();
    pool.load(CoreId(0), slot, program_for(&cfg, 24)).unwrap();
    pool.request_at(0, CoreId(0), slot).unwrap();
    // run() advances only cores with work; the pool clock follows core 0.
    pool.run().unwrap();
    assert_eq!(pool.now(), pool.core(CoreId(0)).now());
    assert!(pool.core(CoreId(1)).now() < pool.now());
}
