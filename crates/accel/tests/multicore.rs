//! Direct `CorePool` coverage: error paths (empty pool, out-of-range
//! core ids, per-core slot isolation), heterogeneous pools built from
//! pre-configured engines, and the occupancy/busy-cycles introspection
//! the serving layer's placement policies rely on.

use std::sync::Arc;

use inca_accel::{
    AccelConfig, AdvanceMode, CoreId, CorePool, Engine, InterruptStrategy, SimError, TimingBackend,
};
use inca_compiler::Compiler;
use inca_isa::{Program, TaskSlot};
use inca_model::{zoo, Shape3};
use inca_obs::Tracer;

fn program_for(cfg: &AccelConfig, side: u32) -> Program {
    Compiler::new(cfg.arch).compile_vi(&zoo::tiny(Shape3::new(3, side, side)).unwrap()).unwrap()
}

#[test]
#[should_panic(expected = "at least one core")]
fn empty_pool_panics() {
    let _ = CorePool::new(
        0,
        AccelConfig::paper_big(),
        InterruptStrategy::NonPreemptive,
        TimingBackend::new,
    );
}

#[test]
#[should_panic(expected = "at least one core")]
fn empty_engine_pool_panics() {
    let _: CorePool<TimingBackend> = CorePool::from_engines(Vec::new());
}

#[test]
fn out_of_range_core_id_is_catchable() {
    let mut pool = CorePool::new(
        2,
        AccelConfig::paper_big(),
        InterruptStrategy::NonPreemptive,
        TimingBackend::new,
    );
    assert!(pool.try_core(CoreId(2)).is_none());
    assert!(pool.try_core_mut(CoreId(2)).is_none());
    assert!(pool.try_core(CoreId(usize::MAX)).is_none());
    assert!(pool.try_core(CoreId(1)).is_some());
    assert_eq!(pool.core_ids().collect::<Vec<_>>(), vec![CoreId(0), CoreId(1)]);
}

#[test]
#[should_panic(expected = "index out of bounds")]
fn busy_cycles_out_of_range_panics() {
    let pool = CorePool::new(
        1,
        AccelConfig::paper_big(),
        InterruptStrategy::NonPreemptive,
        TimingBackend::new,
    );
    let _ = pool.busy_cycles(CoreId(1));
}

#[test]
fn per_core_slot_isolation() {
    let cfg = AccelConfig::paper_big();
    let mut pool = CorePool::new(2, cfg, InterruptStrategy::NonPreemptive, TimingBackend::new);
    let slot = TaskSlot::new(1).unwrap();
    pool.load(CoreId(0), slot, program_for(&cfg, 16)).unwrap();
    // The program loaded on core 0 must not leak to core 1.
    assert!(pool.request_at(0, CoreId(0), slot).is_ok());
    assert!(matches!(pool.request_at(0, CoreId(1), slot), Err(SimError::EmptySlot(_))));
}

#[test]
fn mixed_config_pool_runs_both_cores() {
    // A heterogeneous pool: one big core (VI-preemptible) and one small
    // core (non-preemptive), each compiled against its own arch. The
    // pool-wide resource estimate is documented to follow core 0.
    let big = AccelConfig::paper_big();
    let small = AccelConfig::paper_small();
    let engines = vec![
        Engine::new(big, InterruptStrategy::VirtualInstruction, TimingBackend::new()),
        Engine::new(small, InterruptStrategy::NonPreemptive, TimingBackend::new()),
    ];
    let mut pool = CorePool::from_engines(engines);
    assert_eq!(pool.cores(), 2);

    let slot = TaskSlot::new(2).unwrap();
    pool.load(CoreId(0), slot, program_for(&big, 24)).unwrap();
    pool.load(CoreId(1), slot, program_for(&small, 24)).unwrap();
    pool.request_at(0, CoreId(0), slot).unwrap();
    pool.request_at(0, CoreId(1), slot).unwrap();
    let reports = pool.run().unwrap();
    assert_eq!(reports.len(), 2);
    assert_eq!(reports[0].completed_jobs.len(), 1);
    assert_eq!(reports[1].completed_jobs.len(), 1);
    // The same network on the narrower datapath takes longer.
    assert!(
        reports[1].completed_jobs[0].finish > reports[0].completed_jobs[0].finish,
        "small-arch core is slower on the same network"
    );
}

#[test]
fn busy_cycles_and_occupancy_reflect_partitioned_load() {
    let cfg = AccelConfig::paper_big();
    let mut pool = CorePool::new(3, cfg, InterruptStrategy::NonPreemptive, TimingBackend::new);
    let slot = TaskSlot::new(1).unwrap();
    let p = Arc::new(program_for(&cfg, 24));
    pool.load(CoreId(0), slot, Arc::clone(&p)).unwrap();
    pool.load(CoreId(1), slot, Arc::clone(&p)).unwrap();
    // Core 0 runs two back-to-back jobs (fully busy); core 1 runs the
    // same two jobs with a long idle gap between them (the engine clock
    // jumps across the gap, so idle time shows up in its elapsed time);
    // core 2 never works.
    pool.request_at(0, CoreId(0), slot).unwrap();
    pool.request_at(1, CoreId(0), slot).unwrap();
    pool.request_at(0, CoreId(1), slot).unwrap();
    pool.request_at(200_000, CoreId(1), slot).unwrap();
    pool.run().unwrap();

    let busy: Vec<u64> = pool.core_ids().map(|c| pool.busy_cycles(c)).collect();
    assert_eq!(busy[0], busy[1], "identical job pairs cost identical busy cycles");
    assert!(busy[0] > 0);
    assert_eq!(busy[2], 0, "the idle core did no work");
    let occ0 = pool.occupancy(CoreId(0));
    let occ1 = pool.occupancy(CoreId(1));
    assert!(occ0 > 0.99, "back-to-back jobs keep the core saturated, got {occ0}");
    assert!(occ1 < occ0, "the gap dilutes core 1's occupancy: {occ1} vs {occ0}");
    assert!(occ1 > 0.0);
    assert_eq!(pool.occupancy(CoreId(2)), 0.0);
}

/// A request landing exactly on the deadline cycle is *not* released by
/// that `run_until`: the engine clock jumps to the barrier and stops
/// before the release check runs again. Both advance modes must pin the
/// identical semantics — the release happens on the next barrier.
#[test]
fn request_exactly_on_the_deadline_cycle_waits_for_the_next_barrier() {
    let cfg = AccelConfig::paper_big();
    let slot = TaskSlot::new(1).unwrap();
    for mode in [AdvanceMode::EventDriven, AdvanceMode::Stepping] {
        let mut pool = CorePool::new(2, cfg, InterruptStrategy::NonPreemptive, TimingBackend::new);
        pool.set_advance_mode(mode);
        pool.load(CoreId(0), slot, program_for(&cfg, 16)).unwrap();
        pool.request_at(1_000, CoreId(0), slot).unwrap();

        pool.run_until(1_000).unwrap();
        let r = pool.reports();
        assert_eq!(pool.core(CoreId(0)).now(), 1_000, "{mode}: clock reaches the barrier");
        assert!(r[0].events.is_empty(), "{mode}: the on-deadline arrival is not yet released");

        // The next barrier — even one cycle later — releases and runs it.
        pool.run_until(1_001).unwrap();
        assert!(!pool.reports()[0].events.is_empty(), "{mode}: the next barrier releases the job");
        pool.run_until(u64::MAX).unwrap();
        assert_eq!(pool.reports()[0].completed_jobs.len(), 1, "{mode}");
    }
}

/// Idle cores advance past a quiescent heap for free: no clock movement,
/// no events, pure skips in the stats — and the pool comes back to life
/// when a request re-arms it.
#[test]
fn idle_cores_advance_past_a_quiescent_heap() {
    let cfg = AccelConfig::paper_big();
    let slot = TaskSlot::new(2).unwrap();
    let mut pool = CorePool::new(4, cfg, InterruptStrategy::NonPreemptive, TimingBackend::new);
    assert_eq!(pool.advance_mode(), AdvanceMode::EventDriven, "event mode is the default");

    pool.run_until(10_000).unwrap();
    pool.run_until(20_000).unwrap();
    assert_eq!(pool.now(), 0, "nothing armed: no core's clock moves");
    assert_eq!(pool.next_wake(), None, "the heap is quiescent");
    let stats = pool.advance_stats();
    assert_eq!(stats.barriers, 2);
    assert_eq!(stats.wakes, 0);
    assert_eq!(stats.skips, 8, "4 cores × 2 barriers, all skipped");

    // A request re-arms the heap; only that core wakes.
    pool.load(CoreId(2), slot, program_for(&cfg, 16)).unwrap();
    pool.request_at(30_000, CoreId(2), slot).unwrap();
    assert_eq!(pool.next_wake(), Some((30_000, CoreId(2))));
    pool.run_until(u64::MAX).unwrap();
    assert_eq!(pool.reports()[2].completed_jobs.len(), 1);
    let stats = pool.advance_stats();
    assert_eq!(stats.wakes, 1, "exactly the armed core ticked");
    assert_eq!(stats.skips, 11, "the other three cores stayed skipped");
}

/// Equal-wake ties advance cores in stable core order: two cores armed
/// for the same cycle emit into a shared tracer in core order, no matter
/// which was registered (requested) first — and the merged stream is
/// byte-identical to the stepping loop's.
#[test]
fn equal_wake_ties_advance_in_stable_core_order() {
    let cfg = AccelConfig::paper_big();
    let slot = TaskSlot::new(1).unwrap();
    // Different programs per core so the merged streams are order-sensitive.
    let (small, large) = (program_for(&cfg, 16), program_for(&cfg, 32));

    let run = |request_order: [usize; 2], mode: AdvanceMode| {
        let (tracer, buf) = Tracer::ring(1 << 14);
        let mut engines: Vec<Engine<TimingBackend>> = (0..2)
            .map(|_| Engine::new(cfg, InterruptStrategy::NonPreemptive, TimingBackend::new()))
            .collect();
        for e in &mut engines {
            e.set_tracer(tracer.clone());
        }
        engines[0].load(slot, small.clone()).unwrap();
        engines[1].load(slot, large.clone()).unwrap();
        let mut pool = CorePool::from_engines(engines);
        pool.set_advance_mode(mode);
        for &core in &request_order {
            pool.request_at(5_000, CoreId(core), slot).unwrap();
        }
        pool.run_until(u64::MAX).unwrap();
        buf.drain()
    };

    let forward = run([0, 1], AdvanceMode::EventDriven);
    let reversed = run([1, 0], AdvanceMode::EventDriven);
    let stepping = run([1, 0], AdvanceMode::Stepping);
    assert!(!forward.is_empty());
    assert_eq!(forward, reversed, "registration order must not change the merged stream");
    assert_eq!(forward, stepping, "event-driven ≡ stepping, byte-for-byte");
}

#[test]
fn pool_now_is_the_furthest_core() {
    let cfg = AccelConfig::paper_big();
    let mut pool = CorePool::new(2, cfg, InterruptStrategy::NonPreemptive, TimingBackend::new);
    let slot = TaskSlot::new(1).unwrap();
    pool.load(CoreId(0), slot, program_for(&cfg, 24)).unwrap();
    pool.request_at(0, CoreId(0), slot).unwrap();
    // run() advances only cores with work; the pool clock follows core 0.
    pool.run().unwrap();
    assert_eq!(pool.now(), pool.core(CoreId(0)).now());
    assert!(pool.core(CoreId(1)).now() < pool.now());
}
