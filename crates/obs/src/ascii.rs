//! ASCII timeline rendering: the fixed-width occupancy chart used by
//! `Report::gantt` and the bench bins, with interval clamping hardened
//! against out-of-range and zero-length inputs.

/// One labelled row of a timeline: half-open `[start, end)` cycle
/// intervals plus a trailing note.
#[derive(Debug, Clone, Default)]
pub struct TimelineRow {
    /// Row label (left column).
    pub label: String,
    /// Busy intervals in cycles, half-open.
    pub intervals: Vec<(u64, u64)>,
    /// Free-form text appended after the bar.
    pub note: String,
}

impl TimelineRow {
    /// Builds a row.
    #[must_use]
    pub fn new(
        label: impl Into<String>,
        intervals: Vec<(u64, u64)>,
        note: impl Into<String>,
    ) -> Self {
        Self { label: label.into(), intervals, note: note.into() }
    }
}

/// Paints `intervals` (half-open, in cycles over `[0, span)`) onto a
/// `width`-cell row of `.`/`#`.
///
/// Degenerate inputs never paint: empty/inverted intervals (`start >=
/// end`), intervals entirely past `span`, and in particular a zero-length
/// interval at exactly `span` — which used to round onto the final column.
#[must_use]
pub fn paint(intervals: &[(u64, u64)], span: u64, width: usize) -> String {
    let mut row = vec![b'.'; width];
    if span > 0 && width > 0 {
        for &(start, end) in intervals {
            if start >= end {
                continue;
            }
            let a = (start as u128 * width as u128 / span as u128) as usize;
            if a >= width {
                continue;
            }
            let b = (end as u128 * width as u128 / span as u128) as usize;
            let b = b.clamp(a + 1, width);
            for cell in &mut row[a..b] {
                *cell = b'#';
            }
        }
    }
    String::from_utf8(row).expect("ascii")
}

/// Renders labelled rows plus a `0 .. span cycles` axis line. Labels are
/// padded to a common width; output is deterministic.
#[must_use]
pub fn render(rows: &[TimelineRow], span: u64, width: usize) -> String {
    use std::fmt::Write as _;
    let label_w = rows.iter().map(|r| r.label.len()).max().unwrap_or(0);
    let mut out = String::new();
    for row in rows {
        let bar = paint(&row.intervals, span, width);
        let _ = write!(out, "{:<label_w$} |{}|", row.label, bar);
        if row.note.is_empty() {
            out.push('\n');
        } else {
            let _ = writeln!(out, " {}", row.note);
        }
    }
    let _ = writeln!(
        out,
        "{:pad$}0{:>width$}",
        "",
        format!("{span} cycles"),
        pad = label_w + 2,
        width = width
    );
    out
}

/// Density glyphs for [`spark`], lightest to darkest. ASCII-only so the
/// dashboard renders identically on any terminal.
const SPARK_LEVELS: &[u8] = b" .:-=+*#%@";

/// Renders `values` as a `width`-cell ASCII sparkline. Values are
/// resampled by bucket **maximum** (a one-frame spike always survives
/// compression) and scaled against the global maximum; an all-zero or
/// empty series paints spaces. Deterministic: integer arithmetic only.
#[must_use]
pub fn spark(values: &[u64], width: usize) -> String {
    if width == 0 {
        return String::new();
    }
    let max = values.iter().copied().max().unwrap_or(0);
    if max == 0 {
        return " ".repeat(width);
    }
    let n = values.len();
    let top = (SPARK_LEVELS.len() - 1) as u128;
    let mut out = Vec::with_capacity(width);
    for cell in 0..width {
        // Bucket of source indices [lo, hi) for this cell.
        let lo = cell * n / width;
        let hi = ((cell + 1) * n / width).max(lo + 1).min(n);
        let bucket = values[lo..hi.max(lo)].iter().copied().max().unwrap_or(0);
        // Ceil-scale so any non-zero value clears the blank glyph.
        let level = ((bucket as u128 * top).div_ceil(max as u128)) as usize;
        out.push(SPARK_LEVELS[level.min(SPARK_LEVELS.len() - 1)]);
    }
    String::from_utf8(out).expect("ascii")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_length_interval_at_span_paints_nothing() {
        let bar = paint(&[(100, 100)], 100, 10);
        assert_eq!(bar, "..........");
    }

    #[test]
    fn interval_past_span_paints_nothing() {
        let bar = paint(&[(200, 300)], 100, 10);
        assert_eq!(bar, "..........");
    }

    #[test]
    fn inverted_interval_paints_nothing() {
        let bar = paint(&[(80, 20)], 100, 10);
        assert_eq!(bar, "..........");
    }

    #[test]
    fn short_interval_paints_one_cell() {
        let bar = paint(&[(0, 1)], 1_000_000, 10);
        assert_eq!(bar, "#.........");
    }

    #[test]
    fn full_span_paints_all_cells() {
        let bar = paint(&[(0, 100)], 100, 10);
        assert_eq!(bar, "##########");
    }

    #[test]
    fn spark_scales_to_the_max_and_keeps_spikes() {
        assert_eq!(spark(&[], 4), "    ");
        assert_eq!(spark(&[0, 0, 0], 3), "   ");
        assert_eq!(spark(&[0, 9, 0], 3), " @ ");
        // Bucket-max resampling: the single spike survives 8 -> 4 cells.
        let s = spark(&[0, 0, 0, 0, 0, 9, 0, 0], 4);
        assert_eq!(s, "  @ ");
        // Any non-zero value clears the blank glyph.
        let s = spark(&[1, 1000], 2);
        assert_eq!(s.as_bytes()[1], b'@');
        assert_ne!(s.as_bytes()[0], b' ');
        // Upsampling repeats source cells; width is always honoured.
        assert_eq!(spark(&[9], 5), "@@@@@");
        assert_eq!(spark(&[1, 2, 3], 0), "");
    }

    #[test]
    fn render_aligns_labels_and_axis() {
        let rows = vec![
            TimelineRow::new("slot0", vec![(0, 50)], "1 preemptions"),
            TimelineRow::new("slot1", vec![(50, 100)], String::new()),
        ];
        let out = render(&rows, 100, 10);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "slot0 |#####.....| 1 preemptions");
        assert_eq!(lines[1], "slot1 |.....#####|");
        assert!(lines[2].ends_with("100 cycles"));
        assert!(lines[2].starts_with("       0"));
    }
}
