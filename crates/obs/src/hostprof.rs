//! Host-time self-profiling of the simulator's advance loops.
//!
//! [`HostProf`] attributes **wall-clock** host time (and the virtual
//! cycles advanced during it) to the simulator components that spend it:
//! per-instruction engine stepping, Tier-1 batched layer execution, the
//! admission scheduler, and the serving gateway. The headline figure is
//! *cycles per host second* per component — the measured justification
//! for a discrete-event engine core (ROADMAP item 1).
//!
//! The profiler is gated at runtime: components hold an
//! `Option<HostProf>` that defaults to `None`, so the disabled cost is
//! one discriminant check per hook — the same contract as
//! [`crate::Tracer`]. Because it measures wall time, its output is
//! **explicitly excluded from every deterministic artifact**: nothing it
//! records enters trace streams or `metrics-v1` cycle counters, and its
//! own report uses gauges only (which regression gates ignore under
//! `gauges.hostprof*`). A differential test proves enabling it changes
//! no deterministic byte.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::metrics::Metrics;

/// A simulator component host time is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostComponent {
    /// Tier-0 per-instruction stepping in `Engine::run`.
    EngineStep,
    /// Tier-1 trace-compiled layer batches (`Engine::try_exec_layer`).
    Tier1Batch,
    /// The admission scheduler's `pump` (queue ranking + slot binding).
    Sched,
    /// The serving gateway's run loop, net of the components above.
    Gateway,
}

impl HostComponent {
    /// All components, in report order.
    pub const ALL: [HostComponent; 4] = [
        HostComponent::EngineStep,
        HostComponent::Tier1Batch,
        HostComponent::Sched,
        HostComponent::Gateway,
    ];

    /// Stable snake_case name (used in metric keys).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            HostComponent::EngineStep => "engine_step",
            HostComponent::Tier1Batch => "tier1_batch",
            HostComponent::Sched => "sched",
            HostComponent::Gateway => "gateway",
        }
    }

    fn index(self) -> usize {
        match self {
            HostComponent::EngineStep => 0,
            HostComponent::Tier1Batch => 1,
            HostComponent::Sched => 2,
            HostComponent::Gateway => 3,
        }
    }
}

impl std::fmt::Display for HostComponent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[derive(Debug, Default)]
struct Cell {
    nanos: AtomicU64,
    calls: AtomicU64,
    cycles: AtomicU64,
}

#[derive(Debug, Default)]
struct Inner {
    cells: [Cell; 4],
}

/// A cloneable handle accumulating per-component host time. All clones
/// share one set of atomic counters, so the gateway, its schedulers and
/// their engines can feed a single report.
#[derive(Debug, Clone, Default)]
pub struct HostProf {
    inner: Arc<Inner>,
}

impl HostProf {
    /// A fresh profiler with zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one call of `component` taking `nanos` of host time while
    /// advancing `cycles` virtual cycles.
    pub fn add(&self, component: HostComponent, nanos: u64, cycles: u64) {
        let cell = &self.inner.cells[component.index()];
        cell.nanos.fetch_add(nanos, Ordering::Relaxed);
        cell.calls.fetch_add(1, Ordering::Relaxed);
        cell.cycles.fetch_add(cycles, Ordering::Relaxed);
    }

    /// Starts a timer whose drop records into `component`. The guard owns
    /// a clone of the handle, so it outlives any `&mut self` the timed
    /// scope needs. `cycles` advanced must be reported via [`HostProf::add`]
    /// directly when known; the guard itself records zero cycles.
    #[must_use]
    pub fn timer(&self, component: HostComponent) -> HostTimer {
        HostTimer { prof: self.clone(), component, cycles: 0, t0: Instant::now() }
    }

    /// A point-in-time report of everything accumulated.
    #[must_use]
    pub fn report(&self) -> HostProfReport {
        let mut components = [ComponentStats::default(); 4];
        for c in HostComponent::ALL {
            let cell = &self.inner.cells[c.index()];
            components[c.index()] = ComponentStats {
                nanos: cell.nanos.load(Ordering::Relaxed),
                calls: cell.calls.load(Ordering::Relaxed),
                cycles: cell.cycles.load(Ordering::Relaxed),
            };
        }
        HostProfReport { components }
    }
}

/// Drop guard started by [`HostProf::timer`].
#[derive(Debug)]
pub struct HostTimer {
    prof: HostProf,
    component: HostComponent,
    cycles: u64,
    t0: Instant,
}

impl HostTimer {
    /// Attributes `cycles` virtual cycles to this timed scope (recorded
    /// together with the elapsed host time on drop).
    pub fn add_cycles(&mut self, cycles: u64) {
        self.cycles += cycles;
    }
}

impl Drop for HostTimer {
    fn drop(&mut self) {
        let nanos = u64::try_from(self.t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.prof.add(self.component, nanos, self.cycles);
    }
}

/// Accumulated host time of one component.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ComponentStats {
    /// Host nanoseconds spent inside the component's hooks.
    pub nanos: u64,
    /// Hook invocations.
    pub calls: u64,
    /// Virtual cycles advanced while inside the hooks.
    pub cycles: u64,
}

impl ComponentStats {
    /// Host seconds.
    #[must_use]
    pub fn host_seconds(&self) -> f64 {
        self.nanos as f64 / 1e9
    }

    /// Virtual cycles advanced per host second (0 when nothing ran).
    #[must_use]
    pub fn cycles_per_host_second(&self) -> f64 {
        if self.nanos == 0 {
            0.0
        } else {
            self.cycles as f64 / self.host_seconds()
        }
    }
}

/// A rendered view over [`HostProf`]'s counters.
///
/// Nested hooks overlap: the gateway hook encloses the scheduler and
/// engine hooks, so [`HostProfReport::stats`] of
/// [`HostComponent::Gateway`] reports **self time** (enclosing time minus
/// the inner components), while the raw inclusive numbers stay available
/// via the component array.
#[derive(Debug, Clone, PartialEq)]
pub struct HostProfReport {
    components: [ComponentStats; 4],
}

impl HostProfReport {
    /// Stats for one component. [`HostComponent::Gateway`] is self time:
    /// its hook's inclusive time minus engine/Tier-1/scheduler time.
    #[must_use]
    pub fn stats(&self, component: HostComponent) -> ComponentStats {
        let raw = self.components[component.index()];
        if component != HostComponent::Gateway {
            return raw;
        }
        let inner_nanos: u64 =
            [HostComponent::EngineStep, HostComponent::Tier1Batch, HostComponent::Sched]
                .iter()
                .map(|c| self.components[c.index()].nanos)
                .sum();
        ComponentStats { nanos: raw.nanos.saturating_sub(inner_nanos), ..raw }
    }

    /// Total host seconds across all hooks (gateway counted as self time).
    #[must_use]
    pub fn total_host_seconds(&self) -> f64 {
        HostComponent::ALL.iter().map(|c| self.stats(*c).host_seconds()).sum()
    }

    /// Gauge-only metrics under `hostprof.*` — **wall-clock figures**,
    /// excluded from exact regression comparison by the default gate
    /// rules (`gauges.hostprof*` is ignored).
    #[must_use]
    pub fn metrics(&self) -> Metrics {
        let mut m = Metrics::new();
        for c in HostComponent::ALL {
            let s = self.stats(c);
            m.set_gauge(&format!("hostprof.{c}.host_s"), s.host_seconds());
            m.set_gauge(&format!("hostprof.{c}.calls"), s.calls as f64);
            m.set_gauge(&format!("hostprof.{c}.cycles_per_host_s"), s.cycles_per_host_second());
        }
        m
    }

    /// A fixed-width text table (for `perf_smoke`'s human output).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::from("hostprof: component      host_s      calls    cycles/host_s\n");
        for c in HostComponent::ALL {
            let s = self.stats(c);
            out.push_str(&format!(
                "hostprof: {:<12} {:>9.4} {:>10} {:>16.3e}\n",
                c.as_str(),
                s.host_seconds(),
                s.calls,
                s.cycles_per_host_second(),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_report_accumulate() {
        let p = HostProf::new();
        p.add(HostComponent::EngineStep, 1_000_000_000, 300);
        p.add(HostComponent::EngineStep, 1_000_000_000, 300);
        let r = p.report();
        let s = r.stats(HostComponent::EngineStep);
        assert_eq!(s.calls, 2);
        assert_eq!(s.cycles, 600);
        assert!((s.cycles_per_host_second() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn gateway_reports_self_time() {
        let p = HostProf::new();
        p.add(HostComponent::Gateway, 10_000, 0);
        p.add(HostComponent::Sched, 3_000, 0);
        p.add(HostComponent::EngineStep, 4_000, 0);
        let r = p.report();
        assert_eq!(r.stats(HostComponent::Gateway).nanos, 3_000);
    }

    #[test]
    fn timer_guard_records_on_drop() {
        let p = HostProf::new();
        {
            let mut t = p.timer(HostComponent::Sched);
            t.add_cycles(42);
        }
        let s = p.report().stats(HostComponent::Sched);
        assert_eq!(s.calls, 1);
        assert_eq!(s.cycles, 42);
    }

    #[test]
    fn clones_share_counters() {
        let p = HostProf::new();
        let q = p.clone();
        q.add(HostComponent::Tier1Batch, 5, 7);
        assert_eq!(p.report().stats(HostComponent::Tier1Batch).cycles, 7);
    }
}
