//! A deterministic metrics registry: counters, gauges and cycle
//! histograms with **fixed** bucket boundaries, so a snapshot of the same
//! run is byte-identical no matter where or how often it is taken.
//!
//! Keys are plain dotted strings (`"engine.jobs.completed"`); storage is
//! `BTreeMap`, so iteration (and therefore JSON output) is sorted and
//! reproducible.

use std::collections::BTreeMap;

use crate::json::{self, Obj};

/// Fixed cycle-histogram bucket boundaries: powers of four from 1 to
/// 4^18 (~6.9e10 cycles ≈ 229 s at 300 MHz). A fixed ladder keeps
/// snapshots reproducible across runs and mergeable across sources.
pub const CYCLE_BUCKETS: [u64; 19] = [
    1,
    4,
    16,
    64,
    256,
    1 << 10,
    1 << 12,
    1 << 14,
    1 << 16,
    1 << 18,
    1 << 20,
    1 << 22,
    1 << 24,
    1 << 26,
    1 << 28,
    1 << 30,
    1 << 32,
    1 << 34,
    1 << 36,
];

/// A histogram over the fixed [`CYCLE_BUCKETS`] ladder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// `counts[i]` counts samples `<= CYCLE_BUCKETS[i]`; the final slot
    /// counts overflows.
    counts: [u64; CYCLE_BUCKETS.len() + 1],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self { counts: [0; CYCLE_BUCKETS.len() + 1], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn observe(&mut self, value: u64) {
        let idx = CYCLE_BUCKETS.partition_point(|&b| b < value);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    #[must_use]
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`), linearly interpolated inside the
    /// power-of-4 bucket that holds the target rank.
    ///
    /// Buckets only record that a sample fell in `(lower, upper]`, so the
    /// estimate assumes samples spread uniformly across the bucket; the
    /// result is clamped to the exactly-tracked `[min, max]` range, which
    /// also makes `quantile(0.0) == min()` and `quantile(1.0) == max()`.
    /// Returns 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Continuous rank in [1, count]; rank r is held by the bucket
        // whose cumulative count first reaches r. The tracked extremes are
        // exact, so the endpoint ranks short-circuit to them.
        let rank = q * (self.count as f64 - 1.0) + 1.0;
        if rank <= 1.0 {
            return self.min;
        }
        if rank >= self.count as f64 {
            return self.max;
        }
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let reached = cum as f64 + c as f64;
            if rank <= reached {
                let lower = if i == 0 { 0 } else { CYCLE_BUCKETS[i - 1] };
                let upper = CYCLE_BUCKETS.get(i).copied().unwrap_or(self.max);
                // The bucket's c samples sit at ranks cum+1 ..= cum+c; its
                // first maps to the lower bound, its last to the upper. A
                // fractional rank just above `cum` lands before the first
                // sample — clamp so the estimate stays inside the bucket
                // (and quantiles stay monotone in q).
                let frac = ((rank - cum as f64 - 1.0) / (c as f64 - 1.0).max(1.0)).clamp(0.0, 1.0);
                let est = lower as f64 + frac * (upper.max(lower) - lower) as f64;
                return (est.round() as u64).clamp(self.min, self.max);
            }
            cum += c;
        }
        self.max
    }

    /// Median estimate (see [`Histogram::quantile`]).
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate (see [`Histogram::quantile`]).
    #[must_use]
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate (see [`Histogram::quantile`]).
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// `(upper_bound, count)` for every non-empty bucket; the overflow
    /// bucket reports `u64::MAX` as its bound.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (CYCLE_BUCKETS.get(i).copied().unwrap_or(u64::MAX), c))
            .collect()
    }

    fn to_json(&self) -> String {
        let buckets: Vec<String> =
            self.nonzero_buckets().iter().map(|(le, c)| format!("[{le},{c}]")).collect();
        Obj::new()
            .u64("count", self.count)
            .raw("sum", &self.sum.to_string())
            .u64("min", self.min())
            .u64("max", self.max())
            .f64("mean", self.mean())
            .u64("p50", self.p50())
            .u64("p95", self.p95())
            .u64("p99", self.p99())
            .raw("buckets", &json::array(&buckets))
            .finish()
    }

    /// Rebuilds a histogram from its serialised form (the percentile
    /// fields are derived and ignored). Returns `None` on malformed input.
    fn from_json(v: &json::Value) -> Option<Self> {
        let mut h = Histogram {
            counts: [0; CYCLE_BUCKETS.len() + 1],
            count: v.get("count")?.as_u64()?,
            sum: v.get("sum")?.as_u128()?,
            min: v.get("min")?.as_u64()?,
            max: v.get("max")?.as_u64()?,
        };
        if h.count == 0 {
            h.min = u64::MAX;
        }
        for pair in v.get("buckets")?.as_arr()? {
            let [le, c] = pair.as_arr()? else { return None };
            let (le, c) = (le.as_u64()?, c.as_u64()?);
            let idx = if le == u64::MAX {
                CYCLE_BUCKETS.len()
            } else {
                CYCLE_BUCKETS.iter().position(|&b| b == le)?
            };
            h.counts[idx] = c;
        }
        (h.counts.iter().sum::<u64>() == h.count).then_some(h)
    }
}

/// The registry: sorted maps of counters, gauges and histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to counter `name` (created at 0).
    pub fn inc(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += by;
    }

    /// Sets gauge `name`.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_owned(), value);
    }

    /// Records `value` into histogram `name` (created empty).
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms.entry(name.to_owned()).or_default().observe(value);
    }

    /// Counter value (0 when absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, if set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram, if any sample was recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates gauges in key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates histograms in key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Inserts (or replaces) a whole histogram under `name`.
    pub fn insert_histogram(&mut self, name: &str, h: Histogram) {
        self.histograms.insert(name.to_owned(), h);
    }

    /// Absorbs `other`, prefixing every key with `prefix` (counters add,
    /// gauges overwrite, histograms merge is not needed — they are copied;
    /// colliding histogram keys keep `other`'s).
    pub fn absorb(&mut self, prefix: &str, other: &Metrics) {
        for (k, v) in &other.counters {
            self.inc(&format!("{prefix}{k}"), *v);
        }
        for (k, v) in &other.gauges {
            self.set_gauge(&format!("{prefix}{k}"), *v);
        }
        for (k, v) in &other.histograms {
            self.histograms.insert(format!("{prefix}{k}"), v.clone());
        }
    }

    /// Serialises the three maps as a JSON object fragment (used by
    /// [`MetricsSnapshot::to_json`]).
    #[must_use]
    pub fn to_json_fragment(&self) -> (String, String, String) {
        let mut counters = Obj::new();
        for (k, v) in &self.counters {
            counters = counters.u64(k, *v);
        }
        let mut gauges = Obj::new();
        for (k, v) in &self.gauges {
            gauges = gauges.f64(k, *v);
        }
        let mut histograms = Obj::new();
        for (k, v) in &self.histograms {
            histograms = histograms.raw(k, &v.to_json());
        }
        (counters.finish(), gauges.finish(), histograms.finish())
    }
}

/// Schema identifier stamped into every exported metrics snapshot. All
/// bench bins share this schema (`perf_smoke`, `profile_network --json`,
/// `fig_dslam_mission --json`).
pub const METRICS_SCHEMA: &str = "inca-obs/metrics-v1";

/// Schema identifier for span critical-path snapshots (same envelope
/// shape as [`METRICS_SCHEMA`], produced by
/// `inca_obs::analyze::spans::SpanAnalysis::metrics` via
/// `MetricsSnapshot::with_schema`).
pub const SPANS_SCHEMA: &str = "inca-obs/spans-v1";

/// A named, serialisable view of a [`Metrics`] registry.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Snapshot name (e.g. the bench bin that produced it).
    pub name: String,
    /// The metrics.
    pub metrics: Metrics,
    /// Schema identifier ([`METRICS_SCHEMA`] unless overridden with
    /// [`MetricsSnapshot::with_schema`]).
    pub schema: String,
}

impl MetricsSnapshot {
    /// Wraps `metrics` under `name` with the default [`METRICS_SCHEMA`].
    #[must_use]
    pub fn new(name: impl Into<String>, metrics: Metrics) -> Self {
        Self { name: name.into(), metrics, schema: METRICS_SCHEMA.to_owned() }
    }

    /// Overrides the schema identifier (e.g. [`SPANS_SCHEMA`]).
    #[must_use]
    pub fn with_schema(mut self, schema: &str) -> Self {
        self.schema = schema.to_owned();
        self
    }

    /// Surfaces a trace ring's overflow count as the `trace.dropped`
    /// counter, so a snapshot built next to a truncated trace says so.
    /// Emits a loud stderr warning when events were actually dropped —
    /// a truncated trace must never be analyzed silently as complete.
    #[must_use]
    pub fn with_trace_drops(mut self, dropped: u64) -> Self {
        if dropped > 0 {
            eprintln!(
                "WARNING: trace ring overflowed — {dropped} event(s) dropped; snapshot {:?} \
                 covers an INCOMPLETE trace (raise the ring capacity or sample requests)",
                self.name
            );
        }
        self.metrics.inc("trace.dropped", dropped);
        self
    }

    /// The flat JSON form shared by all bench bins:
    /// `{"schema":"inca-obs/metrics-v1","name":...,"counters":{...},
    /// "gauges":{...},"histograms":{...}}` with sorted keys.
    #[must_use]
    pub fn to_json(&self) -> String {
        let (counters, gauges, histograms) = self.metrics.to_json_fragment();
        Obj::new()
            .str("schema", &self.schema)
            .str("name", &self.name)
            .raw("counters", &counters)
            .raw("gauges", &gauges)
            .raw("histograms", &histograms)
            .finish()
    }

    /// Parses a snapshot back from its [`MetricsSnapshot::to_json`] form.
    /// Counters round-trip exactly; histograms rebuild their bucket
    /// arrays (the serialised percentile fields are derived and dropped).
    ///
    /// # Errors
    ///
    /// Returns a message when the text is not valid JSON, the `schema`
    /// field is missing or neither [`METRICS_SCHEMA`] nor
    /// [`SPANS_SCHEMA`], or a section is malformed.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = json::Value::parse(text).map_err(|e| e.to_string())?;
        let schema = doc.get("schema").and_then(json::Value::as_str).unwrap_or("");
        if schema != METRICS_SCHEMA && schema != SPANS_SCHEMA {
            return Err(format!(
                "unsupported metrics schema {schema:?} (expected {METRICS_SCHEMA:?} or {SPANS_SCHEMA:?})"
            ));
        }
        let name = doc
            .get("name")
            .and_then(json::Value::as_str)
            .ok_or_else(|| "missing snapshot name".to_owned())?
            .to_owned();
        let mut metrics = Metrics::new();
        for (k, v) in doc.get("counters").and_then(json::Value::as_obj).unwrap_or(&[]) {
            let v = v.as_u64().ok_or_else(|| format!("counter {k} is not a u64"))?;
            metrics.inc(k, v);
        }
        for (k, v) in doc.get("gauges").and_then(json::Value::as_obj).unwrap_or(&[]) {
            let v = v.as_f64().ok_or_else(|| format!("gauge {k} is not a number"))?;
            metrics.set_gauge(k, v);
        }
        for (k, v) in doc.get("histograms").and_then(json::Value::as_obj).unwrap_or(&[]) {
            let h = Histogram::from_json(v).ok_or_else(|| format!("histogram {k} malformed"))?;
            metrics.insert_histogram(k, h);
        }
        Ok(Self { name, metrics, schema: schema.to_owned() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_stable() {
        let mut h = Histogram::default();
        for v in [1, 2, 4, 5, 1_000_000, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), u64::MAX);
        let buckets = h.nonzero_buckets();
        // 1 -> le=1; 2,4 -> le=4; 5 -> le=16; 1e6 -> le=2^20; MAX -> overflow.
        assert_eq!(buckets[0], (1, 1));
        assert_eq!(buckets[1], (4, 2));
        assert_eq!(buckets[2], (16, 1));
        assert_eq!(buckets[3], (1 << 20, 1));
        assert_eq!(buckets[4], (u64::MAX, 1));
    }

    #[test]
    fn snapshot_json_is_sorted_and_stable() {
        let mut m = Metrics::new();
        m.inc("b.count", 2);
        m.inc("a.count", 1);
        m.set_gauge("z", 0.5);
        m.observe("lat", 300);
        let s1 = MetricsSnapshot::new("test", m.clone()).to_json();
        let s2 = MetricsSnapshot::new("test", m).to_json();
        assert_eq!(s1, s2);
        let a = s1.find("\"a.count\"").unwrap();
        let b = s1.find("\"b.count\"").unwrap();
        assert!(a < b, "keys sorted");
        assert!(s1.starts_with("{\"schema\":\"inca-obs/metrics-v1\""));
    }

    #[test]
    fn absorb_prefixes_and_adds() {
        let mut inner = Metrics::new();
        inner.inc("jobs", 3);
        inner.set_gauge("util", 0.9);
        inner.observe("lat", 10);
        let mut outer = Metrics::new();
        outer.inc("engine.jobs", 1);
        outer.absorb("engine.", &inner);
        assert_eq!(outer.counter("engine.jobs"), 4);
        assert_eq!(outer.gauge("engine.util"), Some(0.9));
        assert!(outer.histogram("engine.lat").is_some());
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::default();
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn quantile_endpoints_are_exact_min_max() {
        let mut h = Histogram::default();
        for v in [7, 100, 5_000, 123_456] {
            h.observe(v);
        }
        assert_eq!(h.quantile(0.0), 7);
        assert_eq!(h.quantile(1.0), 123_456);
        assert!(h.p50() >= 7 && h.p50() <= 123_456);
    }

    #[test]
    fn quantiles_interpolate_within_a_bucket() {
        // 100 samples uniform over (256, 1024] — all in one bucket, so the
        // interpolated p50 should land near the bucket midpoint.
        let mut h = Histogram::default();
        for i in 0..100u64 {
            h.observe(257 + i * (1024 - 257) / 99);
        }
        let p50 = h.p50();
        assert!((500..=800).contains(&p50), "p50 = {p50}");
        // p99 near the top of the bucket, and ordered.
        assert!(h.p95() <= h.p99());
        assert!(h.p50() <= h.p95());
        assert!(h.p99() <= h.max());
    }

    #[test]
    fn quantiles_are_monotone_when_rank_enters_a_sparse_bucket() {
        // 38 small samples and one large one: the p99 rank (38.62) lands
        // just above the small bucket's cumulative count, before the large
        // bucket's single sample at rank 39. The estimate must stay inside
        // the large bucket, not interpolate below its lower bound.
        let mut h = Histogram::default();
        for _ in 0..38 {
            h.observe(150);
        }
        h.observe(2700);
        assert!(h.p50() <= h.p95(), "p50 {} p95 {}", h.p50(), h.p95());
        assert!(h.p95() <= h.p99(), "p95 {} p99 {}", h.p95(), h.p99());
        assert!(h.p99() >= 1024, "p99 {} must sit in the large bucket", h.p99());
        assert!(h.p99() <= h.max());
    }

    #[test]
    fn quantiles_respect_bucket_boundaries_across_buckets() {
        // 90 small samples and 10 huge ones: p50 stays in the small
        // bucket, p95+ lands in the huge one.
        let mut h = Histogram::default();
        for _ in 0..90 {
            h.observe(3);
        }
        for _ in 0..10 {
            h.observe(1 << 20);
        }
        assert!(h.p50() <= 4, "p50 = {}", h.p50());
        assert!(h.p95() > 256, "p95 = {}", h.p95());
        assert_eq!(h.quantile(1.0), 1 << 20);
    }

    #[test]
    fn single_sample_quantiles_collapse() {
        let mut h = Histogram::default();
        h.observe(42);
        for q in [0.0, 0.25, 0.5, 0.95, 1.0] {
            assert_eq!(h.quantile(q), 42);
        }
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let mut m = Metrics::new();
        m.inc("engine.jobs", u64::MAX - 7); // above 2^53: f64 would corrupt it
        m.inc("sched.admitted", 3);
        m.set_gauge("util", 0.375);
        m.set_gauge("weird \"name\"", -1.5e-3);
        for v in [1, 5, 300, 70_000, u64::MAX] {
            m.observe("lat", v);
        }
        let snap = MetricsSnapshot::new("round trip", m);
        let parsed = MetricsSnapshot::from_json(&snap.to_json()).expect("parse");
        assert_eq!(parsed.name, snap.name);
        assert_eq!(parsed.metrics, snap.metrics);
        // And the re-serialised form is byte-identical.
        assert_eq!(parsed.to_json(), snap.to_json());
    }

    #[test]
    fn from_json_rejects_other_schemas() {
        assert!(MetricsSnapshot::from_json("{\"schema\":\"nope\",\"name\":\"x\"}").is_err());
        assert!(MetricsSnapshot::from_json("not json").is_err());
    }
}
