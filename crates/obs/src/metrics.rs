//! A deterministic metrics registry: counters, gauges and cycle
//! histograms with **fixed** bucket boundaries, so a snapshot of the same
//! run is byte-identical no matter where or how often it is taken.
//!
//! Keys are plain dotted strings (`"engine.jobs.completed"`); storage is
//! `BTreeMap`, so iteration (and therefore JSON output) is sorted and
//! reproducible.

use std::collections::BTreeMap;

use crate::json::{self, Obj};

/// Fixed cycle-histogram bucket boundaries: powers of four from 1 to
/// 4^18 (~6.9e10 cycles ≈ 229 s at 300 MHz). A fixed ladder keeps
/// snapshots reproducible across runs and mergeable across sources.
pub const CYCLE_BUCKETS: [u64; 19] = [
    1,
    4,
    16,
    64,
    256,
    1 << 10,
    1 << 12,
    1 << 14,
    1 << 16,
    1 << 18,
    1 << 20,
    1 << 22,
    1 << 24,
    1 << 26,
    1 << 28,
    1 << 30,
    1 << 32,
    1 << 34,
    1 << 36,
];

/// A histogram over the fixed [`CYCLE_BUCKETS`] ladder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// `counts[i]` counts samples `<= CYCLE_BUCKETS[i]`; the final slot
    /// counts overflows.
    counts: [u64; CYCLE_BUCKETS.len() + 1],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self { counts: [0; CYCLE_BUCKETS.len() + 1], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn observe(&mut self, value: u64) {
        let idx = CYCLE_BUCKETS.partition_point(|&b| b < value);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    #[must_use]
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// `(upper_bound, count)` for every non-empty bucket; the overflow
    /// bucket reports `u64::MAX` as its bound.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (CYCLE_BUCKETS.get(i).copied().unwrap_or(u64::MAX), c))
            .collect()
    }

    fn to_json(&self) -> String {
        let buckets: Vec<String> =
            self.nonzero_buckets().iter().map(|(le, c)| format!("[{le},{c}]")).collect();
        Obj::new()
            .u64("count", self.count)
            .raw("sum", &self.sum.to_string())
            .u64("min", self.min())
            .u64("max", self.max())
            .f64("mean", self.mean())
            .raw("buckets", &json::array(&buckets))
            .finish()
    }
}

/// The registry: sorted maps of counters, gauges and histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to counter `name` (created at 0).
    pub fn inc(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += by;
    }

    /// Sets gauge `name`.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_owned(), value);
    }

    /// Records `value` into histogram `name` (created empty).
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms.entry(name.to_owned()).or_default().observe(value);
    }

    /// Counter value (0 when absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, if set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram, if any sample was recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Absorbs `other`, prefixing every key with `prefix` (counters add,
    /// gauges overwrite, histograms merge is not needed — they are copied;
    /// colliding histogram keys keep `other`'s).
    pub fn absorb(&mut self, prefix: &str, other: &Metrics) {
        for (k, v) in &other.counters {
            self.inc(&format!("{prefix}{k}"), *v);
        }
        for (k, v) in &other.gauges {
            self.set_gauge(&format!("{prefix}{k}"), *v);
        }
        for (k, v) in &other.histograms {
            self.histograms.insert(format!("{prefix}{k}"), v.clone());
        }
    }

    /// Serialises the three maps as a JSON object fragment (used by
    /// [`MetricsSnapshot::to_json`]).
    #[must_use]
    pub fn to_json_fragment(&self) -> (String, String, String) {
        let mut counters = Obj::new();
        for (k, v) in &self.counters {
            counters = counters.u64(k, *v);
        }
        let mut gauges = Obj::new();
        for (k, v) in &self.gauges {
            gauges = gauges.f64(k, *v);
        }
        let mut histograms = Obj::new();
        for (k, v) in &self.histograms {
            histograms = histograms.raw(k, &v.to_json());
        }
        (counters.finish(), gauges.finish(), histograms.finish())
    }
}

/// Schema identifier stamped into every exported metrics snapshot. All
/// bench bins share this schema (`perf_smoke`, `profile_network --json`,
/// `fig_dslam_mission --json`).
pub const METRICS_SCHEMA: &str = "inca-obs/metrics-v1";

/// A named, serialisable view of a [`Metrics`] registry.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Snapshot name (e.g. the bench bin that produced it).
    pub name: String,
    /// The metrics.
    pub metrics: Metrics,
}

impl MetricsSnapshot {
    /// Wraps `metrics` under `name`.
    #[must_use]
    pub fn new(name: impl Into<String>, metrics: Metrics) -> Self {
        Self { name: name.into(), metrics }
    }

    /// The flat JSON form shared by all bench bins:
    /// `{"schema":"inca-obs/metrics-v1","name":...,"counters":{...},
    /// "gauges":{...},"histograms":{...}}` with sorted keys.
    #[must_use]
    pub fn to_json(&self) -> String {
        let (counters, gauges, histograms) = self.metrics.to_json_fragment();
        Obj::new()
            .str("schema", METRICS_SCHEMA)
            .str("name", &self.name)
            .raw("counters", &counters)
            .raw("gauges", &gauges)
            .raw("histograms", &histograms)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_stable() {
        let mut h = Histogram::default();
        for v in [1, 2, 4, 5, 1_000_000, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), u64::MAX);
        let buckets = h.nonzero_buckets();
        // 1 -> le=1; 2,4 -> le=4; 5 -> le=16; 1e6 -> le=2^20; MAX -> overflow.
        assert_eq!(buckets[0], (1, 1));
        assert_eq!(buckets[1], (4, 2));
        assert_eq!(buckets[2], (16, 1));
        assert_eq!(buckets[3], (1 << 20, 1));
        assert_eq!(buckets[4], (u64::MAX, 1));
    }

    #[test]
    fn snapshot_json_is_sorted_and_stable() {
        let mut m = Metrics::new();
        m.inc("b.count", 2);
        m.inc("a.count", 1);
        m.set_gauge("z", 0.5);
        m.observe("lat", 300);
        let s1 = MetricsSnapshot::new("test", m.clone()).to_json();
        let s2 = MetricsSnapshot::new("test", m).to_json();
        assert_eq!(s1, s2);
        let a = s1.find("\"a.count\"").unwrap();
        let b = s1.find("\"b.count\"").unwrap();
        assert!(a < b, "keys sorted");
        assert!(s1.starts_with("{\"schema\":\"inca-obs/metrics-v1\""));
    }

    #[test]
    fn absorb_prefixes_and_adds() {
        let mut inner = Metrics::new();
        inner.inc("jobs", 3);
        inner.set_gauge("util", 0.9);
        inner.observe("lat", 10);
        let mut outer = Metrics::new();
        outer.inc("engine.jobs", 1);
        outer.absorb("engine.", &inner);
        assert_eq!(outer.counter("engine.jobs"), 4);
        assert_eq!(outer.gauge("engine.util"), Some(0.9));
        assert!(outer.histogram("engine.lat").is_some());
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::default();
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.nonzero_buckets().is_empty());
    }
}
