//! Cycle-domain time-series telemetry and the SLO-triggered flight
//! recorder (DESIGN.md §5.9).
//!
//! A [`Sampler`] captures periodic [`Frame`]s of fleet state — per-core
//! busy/reload-cycle burn, per-tenant queue depth, outstanding work and
//! deadline/shed counter deltas, plus advance-mode work telemetry — into
//! a bounded drop-oldest ring. Frames export as the columnar
//! [`TIMESERIES_SCHEMA`] JSON envelope, which is mergeable across
//! gateways ([`TimeSeries::merge`]).
//!
//! Sampling lives entirely in the **cycle domain**: frames are taken at
//! fixed virtual-cycle boundaries interleaved deterministically with the
//! gateway's run loop, so the same request schedule yields byte-identical
//! frames regardless of host, thread count or advance mode — with one
//! deliberate exception: the `advance.*` columns (barriers/wakes/skips)
//! describe *simulator work*, which differs between
//! `AdvanceMode::EventDriven` and `AdvanceMode::Stepping` by design.
//! Every consumer that promises mode-invariance (the flight-recorder
//! dumps) strips them ([`TimeSeries::without_advance`]).
//!
//! The [`FlightRecorder`] is armed with [`SloSpec`] clauses and evaluated
//! at every sample boundary; the first violation freezes a
//! `[cycle - pre, cycle + post]` window that the surface layer dumps as a
//! Perfetto trace ([`dump_chrome`]) plus a timeseries slice
//! ([`dump_slice`]) anchored at the violation cycle.

use std::collections::{BTreeMap, VecDeque};

use crate::analyze::slo::{SloSpec, TaskSel};
use crate::chrome::ChromeTrace;
use crate::json::{self, Obj};
use crate::trace::TraceEvent;

/// Schema identifier stamped into every exported timeline.
pub const TIMESERIES_SCHEMA: &str = "inca-obs/timeseries-v1";

/// Cumulative per-core counters captured at a sample boundary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreObs {
    /// Instruction-execution cycles across completed jobs (cumulative).
    pub busy_cycles: u64,
    /// Program-reload DMA cycles charged by the core's scheduler
    /// (cumulative) — the weight-cache residency proxy: a core that keeps
    /// its programs resident burns none.
    pub reload_cycles: u64,
}

/// Per-tenant state captured at a sample boundary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantObs {
    /// Hard-deadline lane (`false` = best-effort).
    pub hard: bool,
    /// Requests queued and not yet executing (instantaneous).
    pub queue_depth: u64,
    /// Requests admitted but not yet resolved (instantaneous).
    pub outstanding: u64,
    /// Deadline misses (cumulative).
    pub missed: u64,
    /// Requests shed at admission (cumulative).
    pub shed: u64,
    /// Completed requests (cumulative).
    pub completed: u64,
}

/// A full cumulative observation of the fleet at one cycle. The sampler
/// turns consecutive observations into delta [`Frame`]s.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Observation {
    /// The cycle the observation was taken at.
    pub cycle: u64,
    /// Per-core cumulative counters.
    pub cores: Vec<CoreObs>,
    /// Per-tenant state.
    pub tenants: Vec<TenantObs>,
    /// Advance barriers processed (cumulative; mode-dependent telemetry).
    pub barriers: u64,
    /// Cores ticked (cumulative; mode-dependent telemetry).
    pub wakes: u64,
    /// Quiescent cores skipped (cumulative; mode-dependent telemetry).
    pub skips: u64,
}

/// One timeline frame: counter **deltas** over the sample interval plus
/// instantaneous gauges, pinned to the boundary cycle.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Frame {
    /// The sample-boundary cycle the frame ends at.
    pub cycle: u64,
    /// Busy-cycle delta per core.
    pub core_busy: Vec<u64>,
    /// Reload-cycle delta per core.
    pub core_reload: Vec<u64>,
    /// Hard-lane flag per tenant.
    pub hard: Vec<bool>,
    /// Instantaneous queue depth per tenant.
    pub queue_depth: Vec<u64>,
    /// Instantaneous outstanding per tenant.
    pub outstanding: Vec<u64>,
    /// Deadline-miss delta per tenant.
    pub missed: Vec<u64>,
    /// Shed delta per tenant.
    pub shed: Vec<u64>,
    /// Completion delta per tenant.
    pub completed: Vec<u64>,
    /// Advance-barrier delta (mode-dependent telemetry).
    pub barriers: u64,
    /// Core-tick delta (mode-dependent telemetry).
    pub wakes: u64,
    /// Skip delta (mode-dependent telemetry).
    pub skips: u64,
}

/// The first SLO violation the flight recorder observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The sample-boundary cycle the violating frame ended at.
    pub cycle: u64,
    /// Name of the tripped spec.
    pub spec: String,
    /// Human-readable clause verdict (cycle-domain values only, so it is
    /// byte-identical across advance modes and thread counts).
    pub clause: String,
}

/// An always-armed trigger set: [`SloSpec`] clauses evaluated at every
/// sample boundary. Only the clauses that are meaningful *over time* are
/// checked — `depth:` (instantaneous queue depth) and the deadline
/// miss-rate bound (`miss:`, default 0 for deadline-carrying specs,
/// against the tenants' own registered deadlines); end-of-run clauses
/// (`jobs:`, `period:`, shares) are ignored here.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    specs: Vec<SloSpec>,
    pre: u64,
    post: u64,
    violation: Option<Violation>,
}

impl FlightRecorder {
    /// Arms `specs` with a `[cycle - pre, cycle + post]` freeze window.
    #[must_use]
    pub fn new(specs: Vec<SloSpec>, pre: u64, post: u64) -> Self {
        Self { specs, pre, post, violation: None }
    }

    /// The first violation, if any tripped.
    #[must_use]
    pub fn violation(&self) -> Option<&Violation> {
        self.violation.as_ref()
    }

    /// Whether any spec has tripped.
    #[must_use]
    pub fn tripped(&self) -> bool {
        self.violation.is_some()
    }

    /// The frozen `[lo, hi]` cycle window around the violation.
    #[must_use]
    pub fn window(&self) -> Option<(u64, u64)> {
        self.violation
            .as_ref()
            .map(|v| (v.cycle.saturating_sub(self.pre), v.cycle.saturating_add(self.post)))
    }

    /// Tenants selected by a spec: lanes match on the hard flag, `taskN`
    /// selects tenant index N; slot selectors are not visible at the
    /// gateway frame level and match nothing.
    fn selected(sel: TaskSel, tenants: &[TenantObs]) -> Vec<usize> {
        tenants
            .iter()
            .enumerate()
            .filter(|(i, t)| match sel {
                TaskSel::Lane { hard } => t.hard == hard,
                TaskSel::SchedTask(id) => *i == id as usize,
                TaskSel::Slot(_) => false,
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Evaluates every armed spec against one observation; the first
    /// violation freezes (later frames never overwrite it).
    pub fn check(&mut self, obs: &Observation) {
        if self.violation.is_some() {
            return;
        }
        for spec in &self.specs {
            let sel = Self::selected(spec.sel, &obs.tenants);
            if let Some(max) = spec.max_depth {
                for &i in &sel {
                    let depth = obs.tenants[i].queue_depth;
                    if depth > max {
                        self.violation = Some(Violation {
                            cycle: obs.cycle,
                            spec: spec.name.clone(),
                            clause: format!("depth {depth} > {max} (tenant {i})"),
                        });
                        return;
                    }
                }
            }
            if spec.deadline.is_some() || spec.max_miss_rate > 0.0 {
                let missed: u64 = sel.iter().map(|&i| obs.tenants[i].missed).sum();
                let completed: u64 = sel.iter().map(|&i| obs.tenants[i].completed).sum();
                if completed > 0 && missed as f64 > spec.max_miss_rate * completed as f64 {
                    self.violation = Some(Violation {
                        cycle: obs.cycle,
                        spec: spec.name.clone(),
                        clause: format!("miss rate {missed}/{completed} > {}", spec.max_miss_rate),
                    });
                    return;
                }
            }
        }
    }
}

/// The deterministic cycle-domain sampler: feed it cumulative
/// [`Observation`]s at fixed-interval boundaries, read back delta
/// [`Frame`]s from a bounded drop-oldest ring with loud overflow
/// accounting ([`Sampler::dropped`]).
#[derive(Debug, Clone)]
pub struct Sampler {
    interval: u64,
    next: u64,
    capacity: usize,
    frames: VecDeque<Frame>,
    dropped: u64,
    prev: Option<Observation>,
    recorder: Option<FlightRecorder>,
}

impl Sampler {
    /// A sampler taking a frame every `interval` cycles (clamped to ≥ 1)
    /// into a ring of at most `capacity` frames (clamped to ≥ 1).
    #[must_use]
    pub fn new(interval: u64, capacity: usize) -> Self {
        let interval = interval.max(1);
        Self {
            interval,
            next: interval,
            capacity: capacity.max(1),
            frames: VecDeque::new(),
            dropped: 0,
            prev: None,
            recorder: None,
        }
    }

    /// Re-aligns the next boundary to the first interval multiple
    /// strictly after `now` (for samplers installed mid-run).
    pub fn align(&mut self, now: u64) {
        self.next = (now / self.interval + 1) * self.interval;
    }

    /// The sample interval in cycles.
    #[must_use]
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// The next sample-boundary cycle.
    #[must_use]
    pub fn next_at(&self) -> u64 {
        self.next
    }

    /// Arms the flight recorder.
    pub fn arm(&mut self, recorder: FlightRecorder) {
        self.recorder = Some(recorder);
    }

    /// The armed recorder, if any.
    #[must_use]
    pub fn recorder(&self) -> Option<&FlightRecorder> {
        self.recorder.as_ref()
    }

    /// The recorder's frozen violation, if it tripped.
    #[must_use]
    pub fn violation(&self) -> Option<&Violation> {
        self.recorder.as_ref().and_then(FlightRecorder::violation)
    }

    /// Frames currently in the ring (oldest first).
    pub fn frames(&self) -> impl Iterator<Item = &Frame> {
        self.frames.iter()
    }

    /// Frames currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether no frame has been captured yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Frames evicted by ring overflow.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    fn delta(cur: u64, prev: u64) -> u64 {
        cur.saturating_sub(prev)
    }

    fn make_frame(&self, obs: &Observation) -> Frame {
        let zero_core = CoreObs::default();
        let zero_tenant = TenantObs::default();
        let prev = self.prev.as_ref();
        let pcore = |i: usize| prev.and_then(|p| p.cores.get(i)).unwrap_or(&zero_core);
        let ptenant = |i: usize| prev.and_then(|p| p.tenants.get(i)).unwrap_or(&zero_tenant);
        Frame {
            cycle: obs.cycle,
            core_busy: obs
                .cores
                .iter()
                .enumerate()
                .map(|(i, c)| Self::delta(c.busy_cycles, pcore(i).busy_cycles))
                .collect(),
            core_reload: obs
                .cores
                .iter()
                .enumerate()
                .map(|(i, c)| Self::delta(c.reload_cycles, pcore(i).reload_cycles))
                .collect(),
            hard: obs.tenants.iter().map(|t| t.hard).collect(),
            queue_depth: obs.tenants.iter().map(|t| t.queue_depth).collect(),
            outstanding: obs.tenants.iter().map(|t| t.outstanding).collect(),
            missed: obs
                .tenants
                .iter()
                .enumerate()
                .map(|(i, t)| Self::delta(t.missed, ptenant(i).missed))
                .collect(),
            shed: obs
                .tenants
                .iter()
                .enumerate()
                .map(|(i, t)| Self::delta(t.shed, ptenant(i).shed))
                .collect(),
            completed: obs
                .tenants
                .iter()
                .enumerate()
                .map(|(i, t)| Self::delta(t.completed, ptenant(i).completed))
                .collect(),
            barriers: Self::delta(obs.barriers, prev.map_or(0, |p| p.barriers)),
            wakes: Self::delta(obs.wakes, prev.map_or(0, |p| p.wakes)),
            skips: Self::delta(obs.skips, prev.map_or(0, |p| p.skips)),
        }
    }

    /// Records one observation as a frame and schedules the next boundary
    /// one interval after it. A full ring evicts its oldest frame and
    /// counts the eviction ([`Sampler::dropped`]).
    pub fn record(&mut self, obs: Observation) {
        let frame = self.make_frame(&obs);
        if let Some(rec) = &mut self.recorder {
            rec.check(&obs);
        }
        if self.frames.len() == self.capacity {
            self.frames.pop_front();
            self.dropped += 1;
        }
        self.frames.push_back(frame);
        self.next = obs.cycle.saturating_add(self.interval);
        self.prev = Some(obs);
    }

    /// Records a final **partial** frame so delta sums over the frames
    /// reconcile with end-of-run totals even when the run does not end on
    /// a boundary. When the caller's clock has not moved past the last
    /// frame (boundaries can be pinned to grid cycles *ahead* of engine
    /// time while work waits on a batch window), any tail activity is
    /// still captured — one grid step after the last frame, keeping the
    /// cycle axis strictly increasing. A no-op when nothing changed.
    pub fn flush(&mut self, obs: Observation) {
        let mut obs = obs;
        if let Some(prev) = &self.prev {
            if obs.cycle <= prev.cycle {
                let mut same = prev.clone();
                same.cycle = obs.cycle;
                if obs == same {
                    return;
                }
                obs.cycle = prev.cycle.saturating_add(1);
            }
        }
        self.record(obs);
    }

    /// Exports the ring as a [`TimeSeries`].
    #[must_use]
    pub fn series(&self, name: &str, clock_hz: u64) -> TimeSeries {
        let cores = self.frames.iter().map(|f| f.core_busy.len()).max().unwrap_or(0);
        let tenants = self.frames.iter().map(|f| f.queue_depth.len()).max().unwrap_or(0);
        let n = self.frames.len();
        let at = |v: &[u64], i: usize| v.get(i).copied().unwrap_or(0);
        let mut columns: BTreeMap<String, Vec<u64>> = BTreeMap::new();
        let mut col = |key: String, values: Vec<u64>| {
            columns.insert(key, values);
        };
        for c in 0..cores {
            col(format!("core{c}.busy"), self.frames.iter().map(|f| at(&f.core_busy, c)).collect());
            col(
                format!("core{c}.reload_cycles"),
                self.frames.iter().map(|f| at(&f.core_reload, c)).collect(),
            );
        }
        for t in 0..tenants {
            col(
                format!("tenant{t}.queue_depth"),
                self.frames.iter().map(|f| at(&f.queue_depth, t)).collect(),
            );
            col(
                format!("tenant{t}.outstanding"),
                self.frames.iter().map(|f| at(&f.outstanding, t)).collect(),
            );
            col(
                format!("tenant{t}.missed"),
                self.frames.iter().map(|f| at(&f.missed, t)).collect(),
            );
            col(format!("tenant{t}.shed"), self.frames.iter().map(|f| at(&f.shed, t)).collect());
            col(
                format!("tenant{t}.completed"),
                self.frames.iter().map(|f| at(&f.completed, t)).collect(),
            );
        }
        col("advance.barriers".to_owned(), self.frames.iter().map(|f| f.barriers).collect());
        col("advance.wakes".to_owned(), self.frames.iter().map(|f| f.wakes).collect());
        col("advance.skips".to_owned(), self.frames.iter().map(|f| f.skips).collect());
        let mut lanes = vec![false; tenants];
        if let Some(last) = self.frames.back() {
            for (i, &h) in last.hard.iter().enumerate() {
                lanes[i] = h;
            }
        }
        debug_assert!(columns.values().all(|v| v.len() == n));
        TimeSeries {
            name: name.to_owned(),
            clock_hz,
            interval: self.interval,
            dropped: self.dropped,
            lanes,
            cycles: self.frames.iter().map(|f| f.cycle).collect(),
            columns,
            violation: self.violation().cloned(),
        }
    }
}

/// A columnar exported timeline: one `cycles` axis plus named u64
/// columns (`coreN.*` / `tenantN.*` deltas and gauges, `advance.*` work
/// telemetry), serialised as the [`TIMESERIES_SCHEMA`] envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeSeries {
    /// Source name (gateway / bench cell).
    pub name: String,
    /// Virtual clock, Hz.
    pub clock_hz: u64,
    /// Sample interval, cycles.
    pub interval: u64,
    /// Frames evicted by ring overflow before export.
    pub dropped: u64,
    /// Hard-lane flag per tenant column group.
    pub lanes: Vec<bool>,
    /// Sample-boundary cycle per frame.
    pub cycles: Vec<u64>,
    /// Named columns, one value per frame, sorted by name.
    pub columns: BTreeMap<String, Vec<u64>>,
    /// The flight-recorder violation, when one tripped.
    pub violation: Option<Violation>,
}

fn nums(v: &[u64]) -> String {
    let items: Vec<String> = v.iter().map(u64::to_string).collect();
    format!("[{}]", items.join(","))
}

fn group_count(columns: &BTreeMap<String, Vec<u64>>, prefix: &str) -> usize {
    columns
        .keys()
        .filter_map(|k| {
            let rest = k.strip_prefix(prefix)?;
            let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
            digits.parse::<usize>().ok().map(|i| i + 1)
        })
        .max()
        .unwrap_or(0)
}

/// Renumbers `core{i}.x` / `tenant{i}.x` keys by a group offset; other
/// keys pass through (and merge by summation).
fn renumber(key: &str, core_offset: usize, tenant_offset: usize) -> String {
    for (prefix, offset) in [("core", core_offset), ("tenant", tenant_offset)] {
        if let Some(rest) = key.strip_prefix(prefix) {
            let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
            if let Ok(i) = digits.parse::<usize>() {
                return format!("{prefix}{}{}", i + offset, &rest[digits.len()..]);
            }
        }
    }
    key.to_owned()
}

/// Sorted union of two strictly-increasing cycle axes — the common grid
/// a fleet merge aligns both series onto.
fn union_cycles(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(a.len().max(b.len()));
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() || j < b.len() {
        let next = match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) => {
                if x <= y {
                    i += 1;
                    if x == y {
                        j += 1;
                    }
                    x
                } else {
                    j += 1;
                    y
                }
            }
            (Some(&x), None) => {
                i += 1;
                x
            }
            (None, Some(&y)) => {
                j += 1;
                y
            }
            (None, None) => unreachable!(),
        };
        out.push(next);
    }
    out
}

impl TimeSeries {
    /// Number of frames.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cycles.len()
    }

    /// Whether the series holds no frames.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cycles.is_empty()
    }

    /// Number of `coreN.*` column groups.
    #[must_use]
    pub fn cores(&self) -> usize {
        group_count(&self.columns, "core")
    }

    /// Number of `tenantN.*` column groups.
    #[must_use]
    pub fn tenants(&self) -> usize {
        group_count(&self.columns, "tenant")
    }

    /// One column (`None` when absent).
    #[must_use]
    pub fn column(&self, name: &str) -> Option<&[u64]> {
        self.columns.get(name).map(Vec::as_slice)
    }

    /// A copy without the mode-dependent `advance.*` work-telemetry
    /// columns — the projection that is byte-identical across
    /// EventDriven/Stepping advance modes.
    #[must_use]
    pub fn without_advance(&self) -> TimeSeries {
        let mut out = self.clone();
        out.columns.retain(|k, _| !k.starts_with("advance."));
        out
    }

    /// The frames whose boundary cycle falls in `[lo, hi]`, as a new
    /// series (drop accounting and violation carried over).
    #[must_use]
    pub fn slice(&self, lo: u64, hi: u64) -> TimeSeries {
        let keep: Vec<usize> = (0..self.cycles.len())
            .filter(|&i| self.cycles[i] >= lo && self.cycles[i] <= hi)
            .collect();
        let pick = |v: &[u64]| keep.iter().map(|&i| v[i]).collect::<Vec<u64>>();
        TimeSeries {
            name: self.name.clone(),
            clock_hz: self.clock_hz,
            interval: self.interval,
            dropped: self.dropped,
            lanes: self.lanes.clone(),
            cycles: pick(&self.cycles),
            columns: self.columns.iter().map(|(k, v)| (k.clone(), pick(v))).collect(),
            violation: self.violation.clone(),
        }
    }

    /// Merges two series sampled on the same interval and clock: `coreN.*`
    /// and `tenantN.*` column groups of `other` are appended (renumbered
    /// past this series' groups), every other column is summed
    /// element-wise, drop counts add, and the earlier violation (by
    /// cycle) is kept. The cycle axes are union-aligned: a frame one
    /// series lacks (its gateway was idle-skipped at that boundary, or
    /// it simply stopped earlier) contributes zero to all of its columns
    /// — correct because delta columns really are zero over a skipped
    /// window and the gauges of an idle gateway really are zero.
    ///
    /// # Errors
    ///
    /// Returns a message on interval/clock mismatch.
    pub fn merge(&self, other: &TimeSeries) -> Result<TimeSeries, String> {
        if self.interval != other.interval {
            return Err(format!(
                "interval mismatch: {} vs {} cycles",
                self.interval, other.interval
            ));
        }
        if self.clock_hz != other.clock_hz {
            return Err(format!("clock mismatch: {} vs {} Hz", self.clock_hz, other.clock_hz));
        }
        let cycles = union_cycles(&self.cycles, &other.cycles);
        let n = cycles.len();
        // Scatter a source column onto the union axis: frames the source
        // sampled land on their cycle, everything else stays zero.
        let align = |src: &[u64], v: &[u64]| {
            let mut out = vec![0u64; n];
            let mut j = 0usize;
            for (slot, &c) in out.iter_mut().zip(&cycles) {
                if j < src.len() && src[j] == c {
                    *slot = v[j];
                    j += 1;
                }
            }
            out
        };
        let mut columns: BTreeMap<String, Vec<u64>> = BTreeMap::new();
        for (k, v) in &self.columns {
            columns.insert(k.clone(), align(&self.cycles, v));
        }
        let (core_off, tenant_off) = (self.cores(), self.tenants());
        for (k, v) in &other.columns {
            let key = renumber(k, core_off, tenant_off);
            match columns.get_mut(&key) {
                Some(dst) => {
                    for (d, s) in dst.iter_mut().zip(align(&other.cycles, v)) {
                        *d += s;
                    }
                }
                None => {
                    columns.insert(key, align(&other.cycles, v));
                }
            }
        }
        let mut lanes = self.lanes.clone();
        lanes.extend(&other.lanes);
        let violation = match (&self.violation, &other.violation) {
            (Some(a), Some(b)) => Some(if a.cycle <= b.cycle { a.clone() } else { b.clone() }),
            (a, b) => a.clone().or_else(|| b.clone()),
        };
        Ok(TimeSeries {
            name: format!("{}+{}", self.name, other.name),
            clock_hz: self.clock_hz,
            interval: self.interval,
            dropped: self.dropped + other.dropped,
            lanes,
            cycles,
            columns,
            violation,
        })
    }

    /// Per-frame pass verdicts for the timeline-checkable clauses of
    /// `spec` (the same subset the [`FlightRecorder`] triggers on):
    /// `depth:` against instantaneous queue depth and the deadline
    /// miss-rate bound against the running cumulative miss counters.
    /// Specs with no timeline-checkable clause pass vacuously.
    #[must_use]
    pub fn eval_spec(&self, spec: &SloSpec) -> Vec<bool> {
        let tenants = self.tenants();
        let sel: Vec<usize> = (0..tenants)
            .filter(|&i| match spec.sel {
                TaskSel::Lane { hard } => self.lanes.get(i).copied().unwrap_or(false) == hard,
                TaskSel::SchedTask(id) => i == id as usize,
                TaskSel::Slot(_) => false,
            })
            .collect();
        let n = self.len();
        let zero = vec![0u64; n];
        let col = |name: String| self.column(&name).map_or_else(|| zero.clone(), <[u64]>::to_vec);
        let depths: Vec<Vec<u64>> =
            sel.iter().map(|&t| col(format!("tenant{t}.queue_depth"))).collect();
        let missed: Vec<Vec<u64>> = sel.iter().map(|&t| col(format!("tenant{t}.missed"))).collect();
        let completed: Vec<Vec<u64>> =
            sel.iter().map(|&t| col(format!("tenant{t}.completed"))).collect();
        let (mut miss_cum, mut done_cum) = (0u64, 0u64);
        (0..n)
            .map(|i| {
                let mut ok = true;
                if let Some(max) = spec.max_depth {
                    ok &= depths.iter().all(|d| d[i] <= max);
                }
                miss_cum += missed.iter().map(|m| m[i]).sum::<u64>();
                done_cum += completed.iter().map(|c| c[i]).sum::<u64>();
                if spec.deadline.is_some() || spec.max_miss_rate > 0.0 {
                    ok &= done_cum == 0 || miss_cum as f64 <= spec.max_miss_rate * done_cum as f64;
                }
                ok
            })
            .collect()
    }

    /// Serialises the [`TIMESERIES_SCHEMA`] envelope: sorted keys, raw
    /// u64 lexemes, byte-stable.
    #[must_use]
    pub fn to_json(&self) -> String {
        let lanes: Vec<u64> = self.lanes.iter().map(|&h| u64::from(h)).collect();
        let mut cols = Obj::new();
        for (k, v) in &self.columns {
            cols = cols.raw(k, &nums(v));
        }
        let mut obj = Obj::new()
            .str("schema", TIMESERIES_SCHEMA)
            .str("name", &self.name)
            .u64("clock_hz", self.clock_hz)
            .u64("interval", self.interval)
            .u64("frames", self.cycles.len() as u64)
            .u64("dropped", self.dropped)
            .raw("lanes", &nums(&lanes))
            .raw("cycles", &nums(&self.cycles))
            .raw("columns", &cols.finish());
        if let Some(v) = &self.violation {
            let vio = Obj::new()
                .u64("cycle", v.cycle)
                .str("spec", &v.spec)
                .str("clause", &v.clause)
                .finish();
            obj = obj.raw("violation", &vio);
        }
        obj.finish()
    }

    /// Parses a serialised timeline back.
    ///
    /// # Errors
    ///
    /// Returns a message when the text is not valid JSON, the schema is
    /// not [`TIMESERIES_SCHEMA`], or a column is malformed.
    pub fn from_json(text: &str) -> Result<TimeSeries, String> {
        let doc = json::Value::parse(text).map_err(|e| e.to_string())?;
        let schema = doc.get("schema").and_then(json::Value::as_str).unwrap_or("");
        if schema != TIMESERIES_SCHEMA {
            return Err(format!(
                "unsupported timeseries schema {schema:?} (expected {TIMESERIES_SCHEMA:?})"
            ));
        }
        let name = doc
            .get("name")
            .and_then(json::Value::as_str)
            .ok_or_else(|| "missing timeline name".to_owned())?
            .to_owned();
        let num = |key: &str| {
            doc.get(key)
                .and_then(json::Value::as_u64)
                .ok_or_else(|| format!("missing/invalid {key}"))
        };
        let arr = |v: &json::Value, what: &str| -> Result<Vec<u64>, String> {
            v.as_arr()
                .ok_or_else(|| format!("{what} is not an array"))?
                .iter()
                .map(|x| x.as_u64().ok_or_else(|| format!("{what} holds a non-u64")))
                .collect()
        };
        let cycles = arr(doc.get("cycles").ok_or_else(|| "missing cycles".to_owned())?, "cycles")?;
        let lanes = arr(doc.get("lanes").ok_or_else(|| "missing lanes".to_owned())?, "lanes")?
            .into_iter()
            .map(|v| v != 0)
            .collect();
        let mut columns = BTreeMap::new();
        for (k, v) in doc.get("columns").and_then(json::Value::as_obj).unwrap_or(&[]) {
            let col = arr(v, k)?;
            if col.len() != cycles.len() {
                return Err(format!("column {k} length {} != frames {}", col.len(), cycles.len()));
            }
            columns.insert(k.clone(), col);
        }
        let violation = match doc.get("violation") {
            Some(v) => Some(Violation {
                cycle: v
                    .get("cycle")
                    .and_then(json::Value::as_u64)
                    .ok_or_else(|| "violation missing cycle".to_owned())?,
                spec: v
                    .get("spec")
                    .and_then(json::Value::as_str)
                    .ok_or_else(|| "violation missing spec".to_owned())?
                    .to_owned(),
                clause: v
                    .get("clause")
                    .and_then(json::Value::as_str)
                    .ok_or_else(|| "violation missing clause".to_owned())?
                    .to_owned(),
            }),
            None => None,
        };
        Ok(TimeSeries {
            name,
            clock_hz: num("clock_hz")?,
            interval: num("interval")?,
            dropped: num("dropped")?,
            lanes,
            cycles,
            columns,
            violation,
        })
    }
}

/// Trace events whose cycle falls inside `[lo, hi]` — the recorder's
/// frozen window.
#[must_use]
pub fn window_events(events: &[TraceEvent], lo: u64, hi: u64) -> Vec<TraceEvent> {
    events
        .iter()
        .filter(|e| {
            let c = e.cycle();
            c >= lo && c <= hi
        })
        .cloned()
        .collect()
}

/// The flight-recorder Perfetto dump: the trace-ring events inside the
/// frozen window, one process named after the violation. Every input is
/// cycle-domain, so the dump is byte-identical across repeat runs,
/// thread counts and advance modes. `ring_dropped` is the trace ring's
/// overflow count, surfaced as the standard dropped-events instant.
#[must_use]
pub fn dump_chrome(
    events: &[TraceEvent],
    clock_hz: u64,
    violation: &Violation,
    window: (u64, u64),
    ring_dropped: u64,
) -> String {
    let mut t = ChromeTrace::new(clock_hz as f64 / 1e6);
    let name = format!(
        "flight-recorder {} @ {} ({}) window {}..{}",
        violation.spec, violation.cycle, violation.clause, window.0, window.1
    );
    t.add_process(0, &name, &window_events(events, window.0, window.1));
    if ring_dropped > 0 {
        t.note_dropped(0, ring_dropped);
    }
    t.finish()
}

/// The flight-recorder timeseries slice: frames inside the frozen
/// window, with the mode-dependent `advance.*` columns stripped so the
/// dump is byte-identical across advance modes.
#[must_use]
pub fn dump_slice(series: &TimeSeries, window: (u64, u64)) -> String {
    series.slice(window.0, window.1).without_advance().to_json()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(cycle: u64, busy: u64, depth: u64, missed: u64, completed: u64) -> Observation {
        Observation {
            cycle,
            cores: vec![CoreObs { busy_cycles: busy, reload_cycles: busy / 2 }],
            tenants: vec![
                TenantObs {
                    hard: true,
                    queue_depth: depth,
                    outstanding: depth,
                    missed,
                    shed: 0,
                    completed,
                },
                TenantObs {
                    hard: false,
                    queue_depth: depth * 2,
                    outstanding: 0,
                    missed: 0,
                    shed: 1,
                    completed: completed * 2,
                },
            ],
            barriers: cycle / 10,
            wakes: cycle / 10,
            skips: 0,
        }
    }

    #[test]
    fn frames_are_deltas_with_gauges() {
        let mut s = Sampler::new(100, 8);
        s.record(obs(100, 40, 2, 0, 1));
        s.record(obs(200, 90, 1, 1, 3));
        let frames: Vec<&Frame> = s.frames().collect();
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].core_busy, vec![40]);
        assert_eq!(frames[1].core_busy, vec![50]);
        assert_eq!(frames[1].queue_depth, vec![1, 2], "gauges are instantaneous");
        assert_eq!(frames[1].missed, vec![1, 0], "counters are deltas");
        assert_eq!(frames[1].completed, vec![2, 4]);
        assert_eq!(s.next_at(), 300);
    }

    #[test]
    fn ring_overflow_is_counted() {
        let mut s = Sampler::new(10, 2);
        for i in 1..=5u64 {
            s.record(obs(i * 10, i * 10, 0, 0, 0));
        }
        assert_eq!(s.len(), 2);
        assert_eq!(s.dropped(), 3);
        let series = s.series("t", 300_000_000);
        assert_eq!(series.dropped, 3);
        assert_eq!(series.cycles, vec![40, 50]);
    }

    #[test]
    fn flush_records_a_partial_frame_once() {
        let mut s = Sampler::new(100, 8);
        s.record(obs(100, 40, 0, 0, 1));
        s.flush(obs(130, 55, 0, 0, 2));
        s.flush(obs(130, 55, 0, 0, 2));
        assert_eq!(s.len(), 2);
        let last = s.frames().last().unwrap();
        assert_eq!((last.cycle, last.core_busy[0], last.completed[0]), (130, 15, 1));
    }

    #[test]
    fn series_json_round_trips_byte_identically() {
        let mut s = Sampler::new(100, 8);
        s.record(obs(100, 40, 2, 0, 1));
        s.record(obs(200, 90, 9, 1, 3));
        let series = s.series("gw", 300_000_000);
        let text = series.to_json();
        assert!(text.starts_with("{\"schema\":\"inca-obs/timeseries-v1\""));
        let back = TimeSeries::from_json(&text).expect("parse");
        assert_eq!(back, series);
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn from_json_rejects_other_schemas_and_ragged_columns() {
        assert!(TimeSeries::from_json("{\"schema\":\"inca-obs/metrics-v1\"}").is_err());
        assert!(TimeSeries::from_json("not json").is_err());
        let ragged = "{\"schema\":\"inca-obs/timeseries-v1\",\"name\":\"x\",\"clock_hz\":1,\
                      \"interval\":1,\"frames\":2,\"dropped\":0,\"lanes\":[],\"cycles\":[1,2],\
                      \"columns\":{\"a\":[1]}}";
        assert!(TimeSeries::from_json(ragged).is_err());
    }

    #[test]
    fn merge_appends_groups_and_sums_scalars() {
        let mk = |name: &str| {
            let mut s = Sampler::new(100, 8);
            s.record(obs(100, 40, 2, 0, 1));
            s.record(obs(200, 90, 1, 0, 3));
            s.series(name, 300_000_000)
        };
        let merged = mk("a").merge(&mk("b")).expect("merge");
        assert_eq!(merged.name, "a+b");
        assert_eq!(merged.cores(), 2);
        assert_eq!(merged.tenants(), 4);
        assert_eq!(merged.column("core1.busy"), mk("b").column("core0.busy"));
        assert_eq!(merged.column("tenant2.queue_depth"), mk("b").column("tenant0.queue_depth"));
        let a_barriers: u64 = mk("a").column("advance.barriers").unwrap().iter().sum();
        let m_barriers: u64 = merged.column("advance.barriers").unwrap().iter().sum();
        assert_eq!(m_barriers, a_barriers * 2, "scalar columns sum");
        assert_eq!(merged.lanes, vec![true, false, true, false]);

        let mut other = mk("c");
        other.interval = 7;
        assert!(mk("a").merge(&other).is_err());
    }

    #[test]
    fn merge_zero_pads_a_shorter_series() {
        let mut a = Sampler::new(100, 8);
        a.record(obs(100, 40, 0, 0, 1));
        a.record(obs(200, 90, 0, 0, 2));
        let mut b = Sampler::new(100, 8);
        b.record(obs(100, 10, 0, 0, 1));
        let merged = a.series("a", 1).merge(&b.series("b", 1)).expect("merge");
        assert_eq!(merged.cycles, vec![100, 200]);
        assert_eq!(merged.column("core1.busy"), Some(&[10, 0][..]));
    }

    #[test]
    fn merge_union_aligns_diverging_cycle_axes() {
        // Gateway a sampled boundaries 100 and 300; gateway b was
        // idle-skipped at 300 but awake at 200 and 400. The fleet view
        // covers the union grid with zeros where a gateway was absent.
        let mut a = Sampler::new(100, 8);
        a.record(obs(100, 40, 0, 0, 1));
        a.record(obs(300, 90, 0, 0, 2));
        let mut b = Sampler::new(100, 8);
        b.record(obs(200, 10, 3, 0, 1));
        b.record(obs(400, 20, 1, 0, 1));
        let merged = a.series("a", 1).merge(&b.series("b", 1)).expect("merge");
        assert_eq!(merged.cycles, vec![100, 200, 300, 400]);
        assert_eq!(merged.column("core0.busy"), Some(&[40, 0, 50, 0][..]));
        assert_eq!(merged.column("core1.busy"), Some(&[0, 10, 0, 10][..]));
        assert_eq!(merged.column("tenant2.queue_depth"), Some(&[0, 3, 0, 1][..]));
        let completed: u64 = merged.column("tenant0.completed").unwrap().iter().sum();
        assert_eq!(completed, 2, "delta sums survive the re-gridding");
    }

    #[test]
    fn recorder_trips_on_queue_depth_and_freezes() {
        let spec = SloSpec::parse("hard=depth:3", &[], 300_000_000).expect("parse");
        let mut s = Sampler::new(100, 8);
        s.arm(FlightRecorder::new(vec![spec], 150, 50));
        s.record(obs(100, 10, 3, 0, 0));
        assert!(s.violation().is_none(), "at the bound is not over it");
        s.record(obs(200, 20, 4, 0, 0));
        let v = s.violation().expect("tripped").clone();
        assert_eq!(v.cycle, 200);
        assert_eq!(v.spec, "hard");
        assert!(v.clause.contains("depth 4 > 3"), "{}", v.clause);
        // Later, worse frames never overwrite the first violation.
        s.record(obs(300, 30, 9, 0, 0));
        assert_eq!(s.violation().unwrap().cycle, 200);
        assert_eq!(s.recorder().unwrap().window(), Some((50, 250)));
    }

    #[test]
    fn recorder_trips_on_miss_rate() {
        let spec = SloSpec::parse("hard=50ms+miss:0.5", &[], 300_000_000).expect("parse");
        let mut rec = FlightRecorder::new(vec![spec], 0, 0);
        rec.check(&obs(100, 0, 0, 1, 2));
        assert!(!rec.tripped(), "1/2 missed is exactly the bound");
        rec.check(&obs(200, 0, 0, 2, 3));
        assert!(rec.tripped(), "2/3 missed busts 0.5");
        assert!(rec.violation().unwrap().clause.contains("2/3"));
    }

    #[test]
    fn eval_spec_tracks_the_recorder_semantics() {
        let mut s = Sampler::new(100, 8);
        s.record(obs(100, 10, 2, 0, 1));
        s.record(obs(200, 20, 5, 0, 2));
        s.record(obs(300, 30, 1, 1, 3));
        let series = s.series("t", 300_000_000);
        let depth = SloSpec::parse("hard=depth:3", &[], 300_000_000).expect("parse");
        assert_eq!(series.eval_spec(&depth), vec![true, false, true]);
        let miss = SloSpec::parse("hard=50ms", &[], 300_000_000).expect("parse");
        assert_eq!(series.eval_spec(&miss), vec![true, true, false]);
        // Selector that matches nothing passes vacuously.
        let be_depth = SloSpec::parse("task7=depth:0", &[], 300_000_000).expect("parse");
        assert_eq!(series.eval_spec(&be_depth), vec![true, true, true]);
    }

    #[test]
    fn dumps_are_windowed_and_advance_free() {
        use inca_isa::TaskSlot;
        let events: Vec<TraceEvent> = (0..10)
            .map(|i| TraceEvent::JobReleased { cycle: i * 100, slot: TaskSlot::new(1).unwrap() })
            .collect();
        let v = Violation { cycle: 500, spec: "hard".into(), clause: "depth 9 > 3".into() };
        let chrome = dump_chrome(&events, 300_000_000, &v, (400, 600), 0);
        assert!(chrome.contains("flight-recorder hard @ 500"));
        assert_eq!(window_events(&events, 400, 600).len(), 3);

        let mut s = Sampler::new(100, 8);
        s.record(obs(100, 10, 0, 0, 0));
        s.record(obs(200, 20, 0, 0, 0));
        s.record(obs(300, 30, 0, 0, 0));
        let slice = dump_slice(&s.series("t", 300_000_000), (150, 250));
        let parsed = TimeSeries::from_json(&slice).expect("parse");
        assert_eq!(parsed.cycles, vec![200]);
        assert!(parsed.column("advance.barriers").is_none(), "advance columns stripped");
        assert!(parsed.column("core0.busy").is_some());
    }
}
