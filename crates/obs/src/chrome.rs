//! Chrome trace-event JSON export, loadable in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! Track layout per process (one process per accelerator/agent):
//!
//! * tids 0..3 — one track per task slot, in priority order. Job
//!   executions are `"job"` slices; the paper's interrupt phases appear as
//!   nested slices (`t1` finish-current-op, `t2` backup, `t4` restore),
//!   with materialised virtual instructions nested inside `t2`/`t4` and —
//!   when instruction export is enabled — retired instructions nested
//!   inside the job slice. Deadline outcomes and job releases are thread
//!   instants.
//! * tid 8 — the runtime track: topic publications and timer fires.
//! * tid 9 — the application track: milestones (PR match, map merge, …).
//!
//! Timestamps are virtual cycles converted to microseconds with the
//! configured clock; all inputs come from the virtual clock, so the
//! export is byte-identical across runs, host machines and functional
//! backend thread counts.

use crate::json::{self, Obj};
use crate::trace::TraceEvent;
use inca_isa::TASK_SLOTS;

/// tid of the runtime (publications / timers) track.
pub const RUNTIME_TID: u32 = 8;
/// tid of the application-milestone track.
pub const APP_TID: u32 = 9;
/// First tid of the request-span tracks: one track per
/// [`crate::span::SpanStage`], at `SPAN_TID_BASE + stage.code()`.
pub const SPAN_TID_BASE: u32 = 16;

/// Builder for a Chrome trace-event JSON document.
#[derive(Debug)]
pub struct ChromeTrace {
    cycles_per_us: f64,
    include_instructions: bool,
    parts: Vec<String>,
}

impl ChromeTrace {
    /// Creates a builder; `cycles_per_us` converts virtual cycles to the
    /// trace's microsecond timebase (300 for the paper's 300 MHz clock).
    #[must_use]
    pub fn new(cycles_per_us: f64) -> Self {
        Self {
            cycles_per_us: cycles_per_us.max(f64::MIN_POSITIVE),
            include_instructions: false,
            parts: Vec::new(),
        }
    }

    /// Also exports every retired instruction as a nested slice (large
    /// traces; off by default).
    #[must_use]
    pub fn include_instructions(mut self, yes: bool) -> Self {
        self.include_instructions = yes;
        self
    }

    fn ts(&self, cycle: u64) -> String {
        json::number(cycle as f64 / self.cycles_per_us)
    }

    fn meta(&mut self, pid: u32, tid: Option<u32>, kind: &str, name: &str) {
        let mut o = Obj::new().str("name", kind).str("ph", "M").u64("pid", u64::from(pid));
        if let Some(tid) = tid {
            o = o.u64("tid", u64::from(tid));
        }
        self.parts.push(o.raw("args", &Obj::new().str("name", name).finish()).finish());
    }

    fn slice(
        &mut self,
        pid: u32,
        tid: u32,
        name: &str,
        start: u64,
        dur: u64,
        args: Option<String>,
    ) {
        let mut o = Obj::new()
            .str("name", name)
            .str("ph", "X")
            .raw("ts", &self.ts(start))
            .raw("dur", &json::number(dur as f64 / self.cycles_per_us))
            .u64("pid", u64::from(pid))
            .u64("tid", u64::from(tid));
        if let Some(args) = args {
            o = o.raw("args", &args);
        }
        self.parts.push(o.finish());
    }

    fn instant(&mut self, pid: u32, tid: u32, name: &str, cycle: u64, args: Option<String>) {
        let mut o = Obj::new()
            .str("name", name)
            .str("ph", "i")
            .str("s", "t")
            .raw("ts", &self.ts(cycle))
            .u64("pid", u64::from(pid))
            .u64("tid", u64::from(tid));
        if let Some(args) = args {
            o = o.raw("args", &args);
        }
        self.parts.push(o.finish());
    }

    /// Marks `pid`'s trace ring as having overflowed: `dropped` events
    /// were evicted before export, so the trace is **incomplete**. Emits
    /// a loud warning on stderr plus an unmissable instant at cycle 0,
    /// so a truncated trace is never silently analyzed as complete.
    pub fn note_dropped(&mut self, pid: u32, dropped: u64) {
        if dropped == 0 {
            return;
        }
        eprintln!(
            "WARNING: trace ring overflowed — {dropped} event(s) dropped from pid {pid}; \
             the exported trace is INCOMPLETE (raise the ring capacity or sample requests)"
        );
        let args = Obj::new().u64("dropped", dropped).finish();
        self.instant(pid, RUNTIME_TID, "TRACE RING OVERFLOW", 0, Some(args));
    }

    /// Adds one process (accelerator/agent) worth of events.
    pub fn add_process(&mut self, pid: u32, name: &str, events: &[TraceEvent]) {
        self.meta(pid, None, "process_name", name);
        for slot in 0..TASK_SLOTS as u32 {
            self.meta(pid, Some(slot), "thread_name", &format!("slot{slot} (prio {slot})"));
        }
        self.meta(pid, Some(RUNTIME_TID), "thread_name", "runtime");
        self.meta(pid, Some(APP_TID), "thread_name", "app");
        if events.iter().any(|ev| matches!(ev, TraceEvent::Span { .. })) {
            for stage in crate::span::SpanStage::ALL {
                self.meta(
                    pid,
                    Some(SPAN_TID_BASE + stage.code() as u32),
                    "thread_name",
                    &format!("span:{stage}"),
                );
            }
        }
        // Span id -> track tid, for flow-event (arrow) endpoints.
        let span_tid = |stage: crate::span::SpanStage| SPAN_TID_BASE + stage.code() as u32;
        let mut span_tracks: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
        for ev in events {
            if let TraceEvent::Span { id, stage, .. } = ev {
                span_tracks.insert(*id, span_tid(*stage));
            }
        }

        // Open "job" slice start cycle per slot track.
        let mut open: [Option<u64>; TASK_SLOTS] = [None; TASK_SLOTS];
        let mut last_cycle = 0u64;
        for ev in events {
            last_cycle = last_cycle.max(ev.cycle());
            match ev {
                TraceEvent::InstrRetired { start, cycles, slot, op, layer } => {
                    last_cycle = last_cycle.max(start + cycles);
                    if self.include_instructions {
                        let args = Obj::new().u64("layer", u64::from(*layer)).finish();
                        let tid = slot.index() as u32;
                        self.slice(pid, tid, op.mnemonic(), *start, *cycles, Some(args));
                    }
                }
                TraceEvent::ViMaterialized { start, cycles, slot, op, layer } => {
                    last_cycle = last_cycle.max(start + cycles);
                    let args = Obj::new().u64("layer", u64::from(*layer)).finish();
                    let tid = slot.index() as u32;
                    self.slice(
                        pid,
                        tid,
                        &format!("vi:{}", op.mnemonic()),
                        *start,
                        *cycles,
                        Some(args),
                    );
                }
                TraceEvent::SavePatched { cycle, slot, save_id, elided } => {
                    let args = Obj::new()
                        .u64("save_id", u64::from(*save_id))
                        .str("elided", if *elided { "true" } else { "false" })
                        .finish();
                    self.instant(pid, slot.index() as u32, "save patched", *cycle, Some(args));
                }
                TraceEvent::JobReleased { cycle, slot } => {
                    self.instant(pid, slot.index() as u32, "released", *cycle, None);
                }
                TraceEvent::JobStarted { cycle, slot } => {
                    open[slot.index()] = Some(*cycle);
                }
                TraceEvent::JobFinished { cycle, slot, busy_cycles, preemptions } => {
                    if let Some(start) = open[slot.index()].take() {
                        let args = Obj::new()
                            .u64("busy_cycles", *busy_cycles)
                            .u64("preemptions", u64::from(*preemptions))
                            .finish();
                        let tid = slot.index() as u32;
                        self.slice(pid, tid, "job", start, cycle.saturating_sub(start), Some(args));
                    }
                }
                TraceEvent::Preempted { victim, winner, layer, request, t1, t2 } => {
                    let end = request + t1 + t2;
                    last_cycle = last_cycle.max(end);
                    let tid = victim.index() as u32;
                    if let Some(start) = open[victim.index()].take() {
                        let args = Obj::new()
                            .u64("by_slot", winner.index() as u64)
                            .u64("layer", u64::from(*layer))
                            .finish();
                        self.slice(pid, tid, "job", start, end.saturating_sub(start), Some(args));
                    }
                    if *t1 > 0 {
                        self.slice(pid, tid, "t1", *request, *t1, None);
                    }
                    if *t2 > 0 {
                        self.slice(pid, tid, "t2", request + t1, *t2, None);
                    }
                }
                TraceEvent::Resumed { slot, restore_start, t4 } => {
                    last_cycle = last_cycle.max(restore_start + t4);
                    open[slot.index()] = Some(*restore_start);
                    if *t4 > 0 {
                        self.slice(pid, slot.index() as u32, "t4", *restore_start, *t4, None);
                    }
                }
                TraceEvent::DeadlineMet { cycle, slot, deadline, slack } => {
                    let args =
                        Obj::new().u64("deadline", *deadline).u64("slack_cycles", *slack).finish();
                    self.instant(pid, slot.index() as u32, "deadline met", *cycle, Some(args));
                }
                TraceEvent::DeadlineMissed { cycle, slot, deadline, overrun } => {
                    let args = Obj::new()
                        .u64("deadline", *deadline)
                        .u64("overrun_cycles", *overrun)
                        .finish();
                    self.instant(pid, slot.index() as u32, "deadline MISS", *cycle, Some(args));
                }
                TraceEvent::MessagePublished { cycle, topic, subscribers } => {
                    let args = Obj::new().u64("subscribers", u64::from(*subscribers)).finish();
                    self.instant(pid, RUNTIME_TID, &format!("pub {topic}"), *cycle, Some(args));
                }
                TraceEvent::TimerFired { cycle, node, timer } => {
                    let args = Obj::new().u64("node", u64::from(*node)).finish();
                    self.instant(pid, RUNTIME_TID, &format!("timer {timer}"), *cycle, Some(args));
                }
                TraceEvent::SchedAdmitted { cycle, task, job, queue_depth } => {
                    let args = Obj::new()
                        .u64("job", *job)
                        .u64("queue_depth", u64::from(*queue_depth))
                        .finish();
                    self.instant(pid, RUNTIME_TID, &format!("admit t{task}"), *cycle, Some(args));
                }
                TraceEvent::SchedRejected { cycle, task, reason } => {
                    let args = Obj::new().str("reason", reason).finish();
                    self.instant(pid, RUNTIME_TID, &format!("reject t{task}"), *cycle, Some(args));
                }
                TraceEvent::SchedBound { cycle, task, job, slot, preempting, reload_cycles } => {
                    let args = Obj::new()
                        .u64("job", *job)
                        .str("preempting", if *preempting { "true" } else { "false" })
                        .u64("reload_cycles", *reload_cycles)
                        .finish();
                    self.instant(
                        pid,
                        slot.index() as u32,
                        &format!("bind t{task}"),
                        *cycle,
                        Some(args),
                    );
                }
                TraceEvent::EngineMeta { cycle, strategy, clock_hz } => {
                    let args =
                        Obj::new().str("strategy", strategy).u64("clock_hz", *clock_hz).finish();
                    self.instant(pid, RUNTIME_TID, "engine meta", *cycle, Some(args));
                }
                TraceEvent::Span { id, parent, request, stage, start, end, core, detail } => {
                    last_cycle = last_cycle.max(*end);
                    // All fields ride as raw u64 args so the importer
                    // round-trips spans exactly despite the float
                    // microsecond timebase.
                    let args = Obj::new()
                        .u64("id", *id)
                        .u64("parent", *parent)
                        .u64("request", *request)
                        .u64("stage", stage.code())
                        .u64("start_cy", *start)
                        .u64("end_cy", *end)
                        .u64("core", u64::from(*core))
                        .u64("detail", *detail)
                        .finish();
                    let tid = span_tid(*stage);
                    self.slice(
                        pid,
                        tid,
                        &format!("span:{stage}"),
                        *start,
                        end.saturating_sub(*start),
                        Some(args),
                    );
                    // Causal arrow from the parent's slice to this one.
                    if let Some(&ptid) = span_tracks.get(parent) {
                        for (ph, t) in [("s", ptid), ("f", tid)] {
                            let mut o = Obj::new()
                                .str("name", "span-flow")
                                .str("cat", "flow")
                                .str("ph", ph)
                                .u64("id", *id)
                                .raw("ts", &self.ts(*start))
                                .u64("pid", u64::from(pid))
                                .u64("tid", u64::from(t));
                            if ph == "f" {
                                o = o.str("bp", "e");
                            }
                            self.parts.push(o.finish());
                        }
                    }
                }
                TraceEvent::Milestone { cycle, label, detail } => {
                    let args = Obj::new().str("detail", detail).finish();
                    self.instant(pid, APP_TID, label, *cycle, Some(args));
                }
            }
        }
        // Close slices still running when the trace ends.
        for (i, start) in open.into_iter().enumerate() {
            if let Some(start) = start {
                self.slice(pid, i as u32, "job", start, last_cycle.saturating_sub(start), None);
            }
        }
    }

    /// Finishes the document.
    #[must_use]
    pub fn finish(self) -> String {
        Obj::new()
            .raw("traceEvents", &json::array(&self.parts))
            .str("displayTimeUnit", "ms")
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inca_isa::TaskSlot;

    fn slot(i: u8) -> TaskSlot {
        TaskSlot::new(i).unwrap()
    }

    #[test]
    fn phases_become_nested_slices() {
        let events = vec![
            TraceEvent::JobReleased { cycle: 0, slot: slot(3) },
            TraceEvent::JobStarted { cycle: 0, slot: slot(3) },
            TraceEvent::Preempted {
                victim: slot(3),
                winner: slot(1),
                layer: 2,
                request: 100,
                t1: 40,
                t2: 60,
            },
            TraceEvent::JobStarted { cycle: 200, slot: slot(1) },
            TraceEvent::JobFinished { cycle: 500, slot: slot(1), busy_cycles: 300, preemptions: 0 },
            TraceEvent::Resumed { slot: slot(3), restore_start: 500, t4: 25 },
            TraceEvent::JobFinished { cycle: 900, slot: slot(3), busy_cycles: 715, preemptions: 1 },
        ];
        let mut b = ChromeTrace::new(300.0);
        b.add_process(0, "accel", &events);
        let out = b.finish();
        for needle in ["\"t1\"", "\"t2\"", "\"t4\"", "\"job\"", "traceEvents", "process_name"] {
            assert!(out.contains(needle), "missing {needle} in {out}");
        }
        // Valid JSON array bracketing (cheap structural check).
        assert!(out.starts_with("{\"traceEvents\":["));
        assert!(out.ends_with("\"displayTimeUnit\":\"ms\"}"));
    }

    #[test]
    fn export_is_deterministic() {
        let events = vec![
            TraceEvent::JobStarted { cycle: 1, slot: slot(2) },
            TraceEvent::DeadlineMissed { cycle: 7, slot: slot(2), deadline: 5, overrun: 2 },
            TraceEvent::JobFinished { cycle: 7, slot: slot(2), busy_cycles: 6, preemptions: 0 },
        ];
        let render = || {
            let mut b = ChromeTrace::new(300.0);
            b.add_process(1, "a", &events);
            b.finish()
        };
        assert_eq!(render(), render());
        assert!(render().contains("deadline MISS"));
    }

    #[test]
    fn unclosed_job_is_closed_at_trace_end() {
        let events = vec![
            TraceEvent::JobStarted { cycle: 10, slot: slot(0) },
            TraceEvent::TimerFired { cycle: 400, node: 1, timer: 9 },
        ];
        let mut b = ChromeTrace::new(1.0);
        b.add_process(0, "a", &events);
        let out = b.finish();
        assert!(out.contains("\"name\":\"job\",\"ph\":\"X\",\"ts\":10,\"dur\":390"));
    }
}
