//! # inca-obs — deterministic observability for the INCA stack
//!
//! A zero-overhead-when-disabled tracing + metrics layer driven entirely
//! by the simulation's virtual clock:
//!
//! * [`trace`] — typed [`TraceEvent`]s, the [`TraceSink`] trait, a bounded
//!   ring recorder and the cheap [`Tracer`] handle the engine, runtime and
//!   bus are instrumented with. A disabled tracer costs one discriminant
//!   check per site; event-construction closures never run.
//! * [`metrics`] — a [`Metrics`] registry of counters, gauges and
//!   fixed-bucket cycle [`Histogram`]s, snapshotted into the flat JSON
//!   schema ([`METRICS_SCHEMA`]) shared by all bench bins.
//! * [`chrome`] — [`ChromeTrace`], a Chrome trace-event JSON exporter
//!   loadable in Perfetto: one track per task slot, preemption phases
//!   t1/t2/t4 as nested slices, deadline misses as instants.
//! * [`ascii`] — the fixed-width timeline renderer behind
//!   `Report::gantt`, hardened against out-of-range intervals.
//! * [`analyze`] — the trace-analysis engine: streaming [`Analyzer`] over
//!   recorded rings or re-imported trace JSON, preemption t1/t2/t4
//!   accounting with model-drift checks, SLO evaluation, occupancy
//!   attribution, and the perf-baseline regression gate.
//! * [`timeline`] — cycle-domain time-series telemetry: the periodic
//!   [`Sampler`] over bounded frame rings, the columnar
//!   [`TIMESERIES_SCHEMA`] export, and the SLO-triggered
//!   [`FlightRecorder`] that freezes a window around the first violation.
//!
//! Because every timestamp is a virtual cycle, the same program and seed
//! yield **byte-identical** trace files regardless of host machine or the
//! functional backend's worker-thread count.

pub mod analyze;
pub mod ascii;
pub mod chrome;
pub mod hostprof;
pub mod json;
pub mod metrics;
pub mod span;
pub mod timeline;
pub mod trace;

pub use analyze::Analyzer;
pub use ascii::{paint, render, spark, TimelineRow};
pub use chrome::{ChromeTrace, APP_TID, RUNTIME_TID};
pub use hostprof::{HostComponent, HostProf, HostProfReport, HostTimer};
pub use metrics::{
    Histogram, Metrics, MetricsSnapshot, CYCLE_BUCKETS, METRICS_SCHEMA, SPANS_SCHEMA,
};
pub use span::{
    request_detail, request_span_id, span_id, split_request_detail, Span, SpanStage, NO_CORE,
};
pub use timeline::{
    CoreObs, FlightRecorder, Frame, Observation, Sampler, TenantObs, TimeSeries, Violation,
    TIMESERIES_SCHEMA,
};
pub use trace::{RingSink, TraceBuffer, TraceEvent, TraceSink, Tracer};
