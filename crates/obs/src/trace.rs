//! Typed trace events, the [`TraceSink`] trait, the ring-buffer recorder
//! and the cheap [`Tracer`] handle threaded through the stack.
//!
//! All timestamps are **virtual cycles** taken from the simulation clock,
//! never wall time — so the same program and seed produce the same event
//! stream (and therefore byte-identical exported traces) regardless of
//! host speed or the functional backend's worker-thread count.

use std::collections::VecDeque;
use std::sync::Arc;

use inca_isa::{Opcode, TaskSlot};
use parking_lot::Mutex;

use crate::span::SpanStage;

/// One observability event. Every variant carries the virtual cycle(s) it
/// refers to; ordering in a recorded stream follows emission order, which
/// for the single-threaded engine/runtime equals cycle order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// An original instruction retired on the datapath.
    InstrRetired {
        /// Cycle execution of this instruction began.
        start: u64,
        /// Cycles charged.
        cycles: u64,
        /// Slot it ran for.
        slot: TaskSlot,
        /// Opcode.
        op: Opcode,
        /// Layer id.
        layer: u16,
    },
    /// A virtual instruction was materialised by the IAU (a `VIR_SAVE`
    /// during backup, or a `VIR_LOAD_*` during resume).
    ViMaterialized {
        /// Cycle the transfer began.
        start: u64,
        /// Cycles charged.
        cycles: u64,
        /// Slot.
        slot: TaskSlot,
        /// Opcode (`VIR_SAVE`, `VIR_LOAD_D` or `VIR_LOAD_W`).
        op: Opcode,
        /// Layer id.
        layer: u16,
    },
    /// The IAU patched (or fully elided) a later real `SAVE` whose output
    /// range was already flushed by a `VIR_SAVE`.
    SavePatched {
        /// Cycle of the patch.
        cycle: u64,
        /// Slot.
        slot: TaskSlot,
        /// The save group id.
        save_id: u32,
        /// Whether the whole `SAVE` was elided (fully flushed already).
        elided: bool,
    },
    /// A job was released into a slot (request became visible).
    JobReleased {
        /// Release cycle.
        cycle: u64,
        /// Slot.
        slot: TaskSlot,
    },
    /// A job began executing for the first time.
    JobStarted {
        /// Cycle.
        cycle: u64,
        /// Slot.
        slot: TaskSlot,
    },
    /// A job completed.
    JobFinished {
        /// Cycle.
        cycle: u64,
        /// Slot.
        slot: TaskSlot,
        /// Cycles spent executing instructions.
        busy_cycles: u64,
        /// Times it was preempted.
        preemptions: u32,
    },
    /// A job was preempted: the paper's `t1` (finish current operation)
    /// and `t2` (backup) phases, probed on the victim.
    Preempted {
        /// The victim slot.
        victim: TaskSlot,
        /// The requesting (winner) slot.
        winner: TaskSlot,
        /// Victim layer at the request.
        layer: u16,
        /// Cycle the high-priority request was released.
        request: u64,
        /// Cycles to finish the current operation.
        t1: u64,
        /// Backup cycles.
        t2: u64,
    },
    /// A preempted job resumed: the `t4` (restore) phase.
    Resumed {
        /// Slot.
        slot: TaskSlot,
        /// Cycle the restore began.
        restore_start: u64,
        /// Restore cycles.
        t4: u64,
    },
    /// A deadline-carrying job finished in time.
    DeadlineMet {
        /// Completion cycle.
        cycle: u64,
        /// Slot.
        slot: TaskSlot,
        /// The absolute deadline.
        deadline: u64,
        /// Cycles of slack left.
        slack: u64,
    },
    /// A deadline-carrying job finished late.
    DeadlineMissed {
        /// Completion cycle.
        cycle: u64,
        /// Slot.
        slot: TaskSlot,
        /// The absolute deadline.
        deadline: u64,
        /// Cycles past the deadline.
        overrun: u64,
    },
    /// The runtime delivered a publication to its subscribers.
    MessagePublished {
        /// Cycle (or publish sequence number on the wall-clock live bus).
        cycle: u64,
        /// Topic name.
        topic: String,
        /// Subscribers reached.
        subscribers: u32,
    },
    /// A node timer fired.
    TimerFired {
        /// Cycle.
        cycle: u64,
        /// Node index.
        node: u32,
        /// Timer id.
        timer: u32,
    },
    /// The admission scheduler accepted a job into a logical task's queue.
    SchedAdmitted {
        /// Cycle of the submission.
        cycle: u64,
        /// Logical task index.
        task: u32,
        /// Scheduler job id.
        job: u64,
        /// Queue depth after admission (0 when the job bound immediately).
        queue_depth: u32,
    },
    /// The admission scheduler rejected a submission or dropped a queued
    /// job under backpressure.
    SchedRejected {
        /// Cycle of the rejection/drop.
        cycle: u64,
        /// Logical task index.
        task: u32,
        /// Why: `"queue-full"`, `"admission"`, `"drop-oldest"` or
        /// `"degrade-skip"`.
        reason: &'static str,
    },
    /// The scheduler bound a logical task's queued job to a physical slot.
    SchedBound {
        /// Cycle of the binding.
        cycle: u64,
        /// Logical task index.
        task: u32,
        /// Scheduler job id.
        job: u64,
        /// The physical slot the job was bound to.
        slot: TaskSlot,
        /// Whether the binding was placed to preempt a running lower-rank
        /// job (fires the IAU's interrupt machinery).
        preempting: bool,
        /// Program-reload DMA cycles charged before the job's release.
        reload_cycles: u64,
    },
    /// Engine configuration metadata, emitted once when a tracer is
    /// attached: names the interrupt strategy and the virtual clock, so a
    /// recorded (or exported and re-imported) trace is self-describing —
    /// the analysis layer uses it to attribute stats per strategy and to
    /// convert microsecond timestamps back to cycles.
    EngineMeta {
        /// Cycle the tracer was attached.
        cycle: u64,
        /// Interrupt strategy display name (e.g. `"virtual-instruction"`).
        strategy: String,
        /// Virtual clock rate (cycles per second).
        clock_hz: u64,
    },
    /// One closed interval of a request's lifecycle (DESIGN.md §5.7),
    /// emitted when the interval ends. Only emitted for requests tagged
    /// by the serving gateway — classic engine/runtime paths never carry
    /// a request tag and their streams are unchanged. Ids are
    /// deterministic ([`crate::span::span_id`]); `parent` links the span
    /// into the request's causal tree (`0` for the root).
    Span {
        /// Deterministic span id.
        id: u64,
        /// Parent span id (`0` for the request root).
        parent: u64,
        /// The request (`RequestId::raw`).
        request: u64,
        /// Lifecycle stage measured.
        stage: SpanStage,
        /// Start cycle (inclusive).
        start: u64,
        /// End cycle (exclusive).
        end: u64,
        /// Serving core index, or [`crate::span::NO_CORE`].
        core: u32,
        /// Stage-specific detail word (DESIGN.md §5.7).
        detail: u64,
    },
    /// An application-level milestone (e.g. DSLAM PR match, map merge).
    Milestone {
        /// Cycle.
        cycle: u64,
        /// Short label (becomes the event name in exported traces).
        label: String,
        /// Free-form detail.
        detail: String,
    },
}

impl TraceEvent {
    /// The primary cycle of the event (start cycle for spans).
    #[must_use]
    pub fn cycle(&self) -> u64 {
        match self {
            TraceEvent::InstrRetired { start, .. } | TraceEvent::ViMaterialized { start, .. } => {
                *start
            }
            TraceEvent::SavePatched { cycle, .. }
            | TraceEvent::JobReleased { cycle, .. }
            | TraceEvent::JobStarted { cycle, .. }
            | TraceEvent::JobFinished { cycle, .. }
            | TraceEvent::DeadlineMet { cycle, .. }
            | TraceEvent::DeadlineMissed { cycle, .. }
            | TraceEvent::MessagePublished { cycle, .. }
            | TraceEvent::TimerFired { cycle, .. }
            | TraceEvent::SchedAdmitted { cycle, .. }
            | TraceEvent::SchedRejected { cycle, .. }
            | TraceEvent::SchedBound { cycle, .. }
            | TraceEvent::EngineMeta { cycle, .. }
            | TraceEvent::Milestone { cycle, .. } => *cycle,
            TraceEvent::Preempted { request, .. } => *request,
            TraceEvent::Resumed { restore_start, .. } => *restore_start,
            TraceEvent::Span { start, .. } => *start,
        }
    }
}

/// A consumer of trace events. Implementations provide their own interior
/// mutability; `record` takes `&self` so one sink can be shared by every
/// layer of the stack (engine, runtime, bus) through cloned [`Tracer`]s.
pub trait TraceSink: Send + Sync {
    /// Records one event.
    fn record(&self, event: TraceEvent);
}

#[derive(Debug)]
struct RingState {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

/// A bounded in-memory recorder. When full, the **oldest** events are
/// dropped (and counted), so the tail of a long run is always retained.
#[derive(Debug)]
pub struct RingSink {
    state: Mutex<RingState>,
}

impl RingSink {
    /// Creates a ring holding at most `capacity` events.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            state: Mutex::new(RingState {
                events: VecDeque::with_capacity(capacity.min(4096)),
                capacity,
                dropped: 0,
            }),
        }
    }
}

impl TraceSink for RingSink {
    fn record(&self, event: TraceEvent) {
        let mut st = self.state.lock();
        if st.events.len() == st.capacity {
            st.events.pop_front();
            st.dropped += 1;
        }
        st.events.push_back(event);
    }
}

/// Forwards events passing a predicate to an inner [`RingSink`].
struct FilterSink {
    keep: Box<dyn Fn(&TraceEvent) -> bool + Send + Sync>,
    inner: Arc<RingSink>,
}

impl TraceSink for FilterSink {
    fn record(&self, event: TraceEvent) {
        if (self.keep)(&event) {
            self.inner.record(event);
        }
    }
}

/// Read side of a [`Tracer::ring`] pair.
#[derive(Clone)]
pub struct TraceBuffer {
    ring: Arc<RingSink>,
}

impl TraceBuffer {
    /// A copy of all retained events, in emission order.
    #[must_use]
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let st = self.ring.state.lock();
        st.events.iter().cloned().collect()
    }

    /// Drains and returns all retained events.
    #[must_use]
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut st = self.ring.state.lock();
        st.events.drain(..).collect()
    }

    /// Events dropped because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.ring.state.lock().dropped
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.state.lock().events.len()
    }

    /// Whether no events are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for TraceBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceBuffer").field("len", &self.len()).finish()
    }
}

/// The handle instrumented code holds. Cloning is cheap; the default is
/// disabled, in which case [`Tracer::emit`] is a branch on a discriminant
/// and the event closure is never run — the fast path loses nothing.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<dyn TraceSink>>,
}

impl Tracer {
    /// A tracer that records nothing (the default).
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A tracer backed by a [`RingSink`] of `capacity` events, plus the
    /// buffer to read them back from.
    #[must_use]
    pub fn ring(capacity: usize) -> (Self, TraceBuffer) {
        let ring = Arc::new(RingSink::new(capacity));
        (Self { inner: Some(Arc::clone(&ring) as Arc<dyn TraceSink>) }, TraceBuffer { ring })
    }

    /// Like [`Tracer::ring`], but only events for which `keep` returns
    /// `true` reach the ring. Use this to keep high-rate event classes
    /// (e.g. [`TraceEvent::InstrRetired`], one per instruction) from
    /// evicting the sparse scheduling events a bounded ring is meant to
    /// retain.
    #[must_use]
    pub fn ring_filtered(
        capacity: usize,
        keep: impl Fn(&TraceEvent) -> bool + Send + Sync + 'static,
    ) -> (Self, TraceBuffer) {
        let ring = Arc::new(RingSink::new(capacity));
        let tracer = Self {
            inner: Some(Arc::new(FilterSink { keep: Box::new(keep), inner: Arc::clone(&ring) })),
        };
        (tracer, TraceBuffer { ring })
    }

    /// A tracer forwarding to a custom sink.
    pub fn with_sink(sink: impl TraceSink + 'static) -> Self {
        Self { inner: Some(Arc::new(sink)) }
    }

    /// Whether events are being recorded. Instrumentation with non-trivial
    /// setup cost should guard on this.
    #[inline]
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records the event produced by `make` — which is only evaluated when
    /// the tracer is enabled.
    #[inline]
    pub fn emit(&self, make: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = &self.inner {
            sink.record(make());
        }
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer").field("enabled", &self.enabled()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot(i: u8) -> TaskSlot {
        TaskSlot::new(i).unwrap()
    }

    #[test]
    fn disabled_tracer_never_runs_the_closure() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        t.emit(|| unreachable!("closure must not run when disabled"));
    }

    #[test]
    fn ring_records_in_order_and_reads_back() {
        let (t, buf) = Tracer::ring(16);
        assert!(t.enabled());
        for c in 0..3 {
            t.emit(|| TraceEvent::JobReleased { cycle: c, slot: slot(1) });
        }
        let events = buf.snapshot();
        assert_eq!(events.len(), 3);
        assert_eq!(events[2], TraceEvent::JobReleased { cycle: 2, slot: slot(1) });
        assert_eq!(buf.dropped(), 0);
    }

    #[test]
    fn full_ring_drops_oldest_and_counts() {
        let (t, buf) = Tracer::ring(2);
        for c in 0..5 {
            t.emit(|| TraceEvent::TimerFired { cycle: c, node: 0, timer: 0 });
        }
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.dropped(), 3);
        let events = buf.drain();
        assert_eq!(events[0].cycle(), 3);
        assert_eq!(events[1].cycle(), 4);
        assert!(buf.is_empty());
    }

    #[test]
    fn cloned_tracers_share_one_sink() {
        let (t, buf) = Tracer::ring(8);
        let t2 = t.clone();
        t.emit(|| TraceEvent::JobStarted { cycle: 1, slot: slot(0) });
        t2.emit(|| TraceEvent::JobFinished {
            cycle: 2,
            slot: slot(0),
            busy_cycles: 1,
            preemptions: 0,
        });
        assert_eq!(buf.len(), 2);
    }
}
