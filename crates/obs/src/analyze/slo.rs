//! Declarative SLO evaluation: per-task specs (deadline, period, max
//! preemption latency, min throughput, queue delay) checked against a
//! trace, with pass/fail per clause and slack histograms.
//!
//! Spec grammar (one spec per `--slo` argument or comma-separated):
//!
//! ```text
//! <name>=<clauses>
//! clauses := clause ('+' clause)*
//! clause  := <duration>                # shorthand for deadline:<duration>
//!          | deadline:<duration>       # release→finish response bound
//!          | miss:<fraction>           # tolerated deadline miss rate
//!          | latency:<duration>        # max preemption latency when this
//!                                      # task wins the accelerator
//!          | queue:<duration>          # max queue delay
//!          | depth:<count>             # max instantaneous queue depth
//!                                      # (timeline frames / flight recorder)
//!          | jobs:<count>              # min completed jobs
//!          | period:<duration>         # release period → throughput floor
//!          | queue_share:<fraction>    # max share of lane latency in queue
//!          | batch_share:<fraction>    # … waiting in a gateway batch
//!          | reload_share:<fraction>   # … in program-reload DMA
//!          | preempt_share:<fraction>  # … preempted out
//! duration := <number>("cy"|"us"|"ms"|"s")
//! fraction := ['<']<number>            # e.g. 0.2 or <0.2
//! ```
//!
//! `<name>` resolves through the caller-supplied alias table (the DSLAM
//! mission maps `fe`→slot 1 and `pr`→slot 3), or the built-ins `slotN` /
//! `taskN` for physical slots and scheduler tasks, plus `hard` / `be` for
//! the serving lanes. Lane selectors and the `*_share` clauses evaluate
//! against request-scoped span data (DESIGN.md §5.7), so they need
//! [`SloSpec::evaluate_with_spans`]; share bounds compare the lane's
//! **aggregate** share (summed stage cycles over summed latency).

use crate::analyze::attribution::Attribution;
use crate::analyze::preemption::PreemptionStats;
use crate::analyze::spans::SpanAnalysis;
use crate::metrics::Histogram;
use crate::span::SpanStage;
use crate::trace::TraceEvent;
use inca_isa::TASK_SLOTS;

/// Deadline accounting folded straight off `DeadlineMet`/`DeadlineMissed`
/// events — byte-for-byte the same counters and histograms the runtime
/// derives, so analyzer and `Runtime::report()` can be cross-checked.
#[derive(Debug, Clone, Default)]
pub struct DeadlineStats {
    /// Deadline-carrying jobs that finished in time.
    pub met: u64,
    /// Deadline-carrying jobs that finished late.
    pub missed: u64,
    /// Slack of met deadlines.
    pub slack: Histogram,
    /// Overrun of missed deadlines.
    pub overrun: Histogram,
    /// Met per slot.
    pub per_slot_met: [u64; TASK_SLOTS],
    /// Missed per slot.
    pub per_slot_missed: [u64; TASK_SLOTS],
}

impl DeadlineStats {
    /// Folds one event.
    pub fn push(&mut self, ev: &TraceEvent) {
        match ev {
            TraceEvent::DeadlineMet { slot, slack, .. } => {
                self.met += 1;
                self.per_slot_met[slot.index()] += 1;
                self.slack.observe(*slack);
            }
            TraceEvent::DeadlineMissed { slot, overrun, .. } => {
                self.missed += 1;
                self.per_slot_missed[slot.index()] += 1;
                self.overrun.observe(*overrun);
            }
            _ => {}
        }
    }
}

/// What a spec selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskSel {
    /// A physical accelerator slot.
    Slot(usize),
    /// A logical scheduler task.
    SchedTask(u32),
    /// A serving lane (requires span data: [`SloSpec::evaluate_with_spans`]).
    Lane {
        /// Hard-deadline lane (`false` = best-effort).
        hard: bool,
    },
}

/// One parsed SLO spec.
#[derive(Debug, Clone)]
pub struct SloSpec {
    /// The name it was written with (alias or `slotN`/`taskN`).
    pub name: String,
    /// Resolved selector.
    pub sel: TaskSel,
    /// Max release→finish response, cycles.
    pub deadline: Option<u64>,
    /// Tolerated fraction of jobs over the deadline (default 0).
    pub max_miss_rate: f64,
    /// Max preemption latency imposed when this task wins, cycles.
    pub max_preempt_latency: Option<u64>,
    /// Max queue delay (slot release→start, or task admit→bind), cycles.
    pub max_queue_delay: Option<u64>,
    /// Max instantaneous queue depth, requests. Only the timeline layer
    /// can see instantaneous depth, so this clause is evaluated by the
    /// flight recorder and `TimeSeries::eval_spec`, not the end-of-run
    /// trace paths (which ignore it).
    pub max_depth: Option<u64>,
    /// Min completed (slot) / bound (task) jobs.
    pub min_jobs: Option<u64>,
    /// Release period, cycles — requires ≥ `window/period − 1` jobs.
    pub period: Option<u64>,
    /// Max aggregate `(stage, share)` bounds over the selected lane's
    /// latency decomposition (span data required).
    pub max_shares: Vec<(SpanStage, f64)>,
}

/// One clause's verdict.
#[derive(Debug, Clone)]
pub struct ClauseResult {
    /// e.g. `deadline ≤ 50ms`.
    pub label: String,
    /// Whether it held.
    pub passed: bool,
    /// Human-readable measurement summary.
    pub detail: String,
}

/// One spec's verdict.
#[derive(Debug, Clone)]
pub struct SloReport {
    /// Spec name.
    pub name: String,
    /// All clauses held.
    pub passed: bool,
    /// Per-clause verdicts.
    pub clauses: Vec<ClauseResult>,
    /// Deadline slack distribution (`deadline − response`, clamped at 0),
    /// one sample per evaluated job; empty without a deadline clause.
    pub slack: Histogram,
    /// Fraction of evaluated jobs over the deadline.
    pub miss_rate: f64,
}

fn parse_duration(s: &str, clock_hz: u64) -> Result<u64, String> {
    let (num, unit) = s
        .find(|c: char| c.is_ascii_alphabetic())
        .map(|i| s.split_at(i))
        .ok_or_else(|| format!("missing unit in duration {s:?} (cy/us/ms/s)"))?;
    let v: f64 = num.parse().map_err(|_| format!("bad number in duration {s:?}"))?;
    let cycles_per_us = clock_hz as f64 / 1e6;
    let cycles = match unit {
        "cy" | "cyc" => v,
        "us" => v * cycles_per_us,
        "ms" => v * 1e3 * cycles_per_us,
        "s" => v * 1e6 * cycles_per_us,
        _ => return Err(format!("unknown duration unit {unit:?} (cy/us/ms/s)")),
    };
    Ok(cycles.round() as u64)
}

fn parse_share(s: &str) -> Result<f64, String> {
    let v = s.strip_prefix('<').unwrap_or(s);
    let share: f64 = v.parse().map_err(|_| format!("bad share fraction {s:?}"))?;
    if !(0.0..=1.0).contains(&share) {
        return Err(format!("share fraction {s:?} outside 0..=1"));
    }
    Ok(share)
}

impl SloSpec {
    /// Parses one `name=clauses` spec. `aliases` maps task names to
    /// selectors; `clock_hz` converts time units to cycles.
    pub fn parse(
        spec: &str,
        aliases: &[(&str, TaskSel)],
        clock_hz: u64,
    ) -> Result<SloSpec, String> {
        let (name, body) =
            spec.split_once('=').ok_or_else(|| format!("SLO spec {spec:?} missing '='"))?;
        let name = name.trim();
        let sel = aliases
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, s)| *s)
            .or_else(|| {
                name.strip_prefix("slot")
                    .and_then(|n| n.parse::<usize>().ok())
                    .filter(|&n| n < TASK_SLOTS)
                    .map(TaskSel::Slot)
            })
            .or_else(|| {
                name.strip_prefix("task").and_then(|n| n.parse().ok()).map(TaskSel::SchedTask)
            })
            .or(match name {
                "hard" => Some(TaskSel::Lane { hard: true }),
                "be" | "best-effort" => Some(TaskSel::Lane { hard: false }),
                _ => None,
            })
            .ok_or_else(|| {
                format!("unknown SLO task {name:?} (aliases, slotN, taskN, hard or be)")
            })?;
        let mut out = SloSpec {
            name: name.to_owned(),
            sel,
            deadline: None,
            max_miss_rate: 0.0,
            max_preempt_latency: None,
            max_queue_delay: None,
            max_depth: None,
            min_jobs: None,
            period: None,
            max_shares: Vec::new(),
        };
        for clause in body.split('+') {
            let clause = clause.trim();
            match clause.split_once(':') {
                None => out.deadline = Some(parse_duration(clause, clock_hz)?),
                Some(("deadline", v)) => out.deadline = Some(parse_duration(v, clock_hz)?),
                Some(("latency", v)) => {
                    out.max_preempt_latency = Some(parse_duration(v, clock_hz)?);
                }
                Some(("queue", v)) => out.max_queue_delay = Some(parse_duration(v, clock_hz)?),
                Some(("depth", v)) => {
                    out.max_depth = Some(v.parse().map_err(|_| format!("bad queue depth {v:?}"))?);
                }
                Some(("period", v)) => out.period = Some(parse_duration(v, clock_hz)?),
                Some(("jobs", v)) => {
                    out.min_jobs = Some(v.parse().map_err(|_| format!("bad job count {v:?}"))?);
                }
                Some(("miss", v)) => {
                    out.max_miss_rate = v.parse().map_err(|_| format!("bad miss rate {v:?}"))?;
                }
                Some(("queue_share", v)) => {
                    out.max_shares.push((SpanStage::Queue, parse_share(v)?));
                }
                Some(("batch_share", v)) => {
                    out.max_shares.push((SpanStage::BatchWait, parse_share(v)?));
                }
                Some(("reload_share", v)) => {
                    out.max_shares.push((SpanStage::Reload, parse_share(v)?));
                }
                Some(("preempt_share", v)) => {
                    out.max_shares.push((SpanStage::Preempted, parse_share(v)?));
                }
                Some((k, _)) => return Err(format!("unknown SLO clause {k:?}")),
            }
        }
        Ok(out)
    }

    /// Parses a comma-separated list of specs.
    pub fn parse_list(
        list: &str,
        aliases: &[(&str, TaskSel)],
        clock_hz: u64,
    ) -> Result<Vec<SloSpec>, String> {
        list.split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|s| SloSpec::parse(s, aliases, clock_hz))
            .collect()
    }

    /// Evaluates the spec against an analyzed trace. Lane selectors and
    /// `*_share` clauses fail here (no span data) — use
    /// [`Self::evaluate_with_spans`] when spans are available.
    #[must_use]
    pub fn evaluate(&self, attr: &Attribution, preempt: &PreemptionStats) -> SloReport {
        self.evaluate_with_spans(attr, preempt, None)
    }

    /// Evaluates the spec against an analyzed trace, with optional
    /// request-scoped span data backing lane selectors (`hard`/`be`) and
    /// the `*_share` clauses.
    #[must_use]
    pub fn evaluate_with_spans(
        &self,
        attr: &Attribution,
        preempt: &PreemptionStats,
        spans: Option<&SpanAnalysis>,
    ) -> SloReport {
        let mut clauses = Vec::new();
        let mut slack = Histogram::default();
        let mut miss_rate = 0.0;

        let lane_breakdowns = match self.sel {
            TaskSel::Lane { hard } => spans.map(|s| s.lane(hard)),
            _ => None,
        };
        let (completed, queue_max, win_latency) = match self.sel {
            TaskSel::Slot(i) => (
                attr.slots[i].finished,
                attr.slots[i].queue_wait.max(),
                preempt.worst_latency_per_winner[i],
            ),
            TaskSel::SchedTask(t) => {
                let task = attr.tasks.get(&t);
                (task.map_or(0, |t| t.bound), task.map_or(0, |t| t.queue_delay.max()), 0)
            }
            TaskSel::Lane { .. } => {
                let lane = lane_breakdowns.as_deref().unwrap_or(&[]);
                (lane.len() as u64, lane.iter().map(|b| b.queue()).max().unwrap_or(0), 0)
            }
        };

        if let Some(deadline) = self.deadline {
            match self.sel {
                TaskSel::Slot(i) => {
                    let responses = &attr.slots[i].responses;
                    let missed = responses.iter().filter(|(_, r)| *r > deadline).count() as u64;
                    for (_, r) in responses {
                        slack.observe(deadline.saturating_sub(*r));
                    }
                    miss_rate = if responses.is_empty() {
                        0.0
                    } else {
                        missed as f64 / responses.len() as f64
                    };
                    clauses.push(ClauseResult {
                        label: format!("deadline ≤ {deadline}cy (miss ≤ {})", self.max_miss_rate),
                        passed: miss_rate <= self.max_miss_rate,
                        detail: format!(
                            "{missed}/{} over; worst response {}cy",
                            responses.len(),
                            attr.slots[i].response.max()
                        ),
                    });
                }
                TaskSel::Lane { .. } => match lane_breakdowns.as_deref() {
                    Some(lane) if !lane.is_empty() => {
                        let missed = lane.iter().filter(|b| b.total() > deadline).count() as u64;
                        for b in lane {
                            slack.observe(deadline.saturating_sub(b.total()));
                        }
                        miss_rate = missed as f64 / lane.len() as f64;
                        clauses.push(ClauseResult {
                            label: format!(
                                "deadline ≤ {deadline}cy (miss ≤ {})",
                                self.max_miss_rate
                            ),
                            passed: miss_rate <= self.max_miss_rate,
                            detail: format!(
                                "{missed}/{} over; worst latency {}cy",
                                lane.len(),
                                lane.iter().map(|b| b.total()).max().unwrap_or(0)
                            ),
                        });
                    }
                    _ => clauses.push(ClauseResult {
                        label: format!("deadline ≤ {deadline}cy"),
                        passed: false,
                        detail: "lane selectors need span data (no tagged requests?)".into(),
                    }),
                },
                TaskSel::SchedTask(_) => clauses.push(ClauseResult {
                    label: format!("deadline ≤ {deadline}cy"),
                    passed: false,
                    detail: "deadline clauses need a slot or lane selector".into(),
                }),
            }
        }
        if let Some(max) = self.max_preempt_latency {
            if matches!(self.sel, TaskSel::Lane { .. }) {
                clauses.push(ClauseResult {
                    label: format!("preempt latency ≤ {max}cy"),
                    passed: false,
                    detail: "latency clauses need a slot selector".into(),
                });
            } else {
                clauses.push(ClauseResult {
                    label: format!("preempt latency ≤ {max}cy"),
                    passed: win_latency <= max,
                    detail: format!("worst t1+t2 when winning: {win_latency}cy"),
                });
            }
        }
        if let Some(max) = self.max_queue_delay {
            clauses.push(ClauseResult {
                label: format!("queue delay ≤ {max}cy"),
                passed: queue_max <= max,
                detail: format!("worst queue delay {queue_max}cy"),
            });
        }
        if let Some(min) = self.min_jobs {
            clauses.push(ClauseResult {
                label: format!("jobs ≥ {min}"),
                passed: completed >= min,
                detail: format!("{completed} completed"),
            });
        }
        if let Some(period) = self.period {
            let expected = (attr.window_cycles() / period.max(1)).saturating_sub(1);
            clauses.push(ClauseResult {
                label: format!("throughput ≥ 1/{period}cy"),
                passed: completed >= expected,
                detail: format!("{completed} completed, window supports {expected}"),
            });
        }
        for &(stage, max) in &self.max_shares {
            let key = match stage {
                SpanStage::Queue => "queue_share",
                SpanStage::BatchWait => "batch_share",
                SpanStage::Reload => "reload_share",
                SpanStage::Preempted => "preempt_share",
                _ => "share",
            };
            let label = format!("{key} < {max}");
            match (self.sel, spans) {
                (TaskSel::Lane { hard }, Some(spans)) => match spans.lane_share(hard, stage) {
                    Some(share) => clauses.push(ClauseResult {
                        label,
                        passed: share < max || (share - max).abs() < 1e-12,
                        detail: format!("aggregate {key} = {share:.4}"),
                    }),
                    None => clauses.push(ClauseResult {
                        label,
                        passed: false,
                        detail: "lane has no completed requests".into(),
                    }),
                },
                (TaskSel::Lane { .. }, None) => clauses.push(ClauseResult {
                    label,
                    passed: false,
                    detail: "share clauses need span data (no tagged requests?)".into(),
                }),
                _ => clauses.push(ClauseResult {
                    label,
                    passed: false,
                    detail: "share clauses need a lane selector (hard/be)".into(),
                }),
            }
        }

        SloReport {
            name: self.name.clone(),
            passed: clauses.iter().all(|c| c.passed),
            clauses,
            slack,
            miss_rate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inca_isa::TaskSlot;

    fn slot(i: u8) -> TaskSlot {
        TaskSlot::new(i).unwrap()
    }

    const HZ: u64 = 300_000_000;

    #[test]
    fn parses_shorthand_and_full_grammar() {
        let aliases = [("fe", TaskSel::Slot(1)), ("pr", TaskSel::Slot(3))];
        let s = SloSpec::parse("fe=50ms", &aliases, HZ).expect("parse");
        assert_eq!(s.sel, TaskSel::Slot(1));
        assert_eq!(s.deadline, Some(15_000_000));

        let s = SloSpec::parse("pr=deadline:1s+latency:100us+miss:0.25+jobs:3", &aliases, HZ)
            .expect("parse");
        assert_eq!(s.deadline, Some(300_000_000));
        assert_eq!(s.max_preempt_latency, Some(30_000));
        assert_eq!(s.max_miss_rate, 0.25);
        assert_eq!(s.min_jobs, Some(3));

        let s = SloSpec::parse("slot2=1000cy", &[], HZ).expect("parse");
        assert_eq!(s.sel, TaskSel::Slot(2));
        assert_eq!(s.deadline, Some(1000));

        let s = SloSpec::parse("task7=queue:10us", &[], HZ).expect("parse");
        assert_eq!(s.sel, TaskSel::SchedTask(7));
        assert_eq!(s.max_queue_delay, Some(3000));

        let s = SloSpec::parse("hard=depth:4+miss:0.1", &[], HZ).expect("parse");
        assert_eq!(s.sel, TaskSel::Lane { hard: true });
        assert_eq!(s.max_depth, Some(4));
        assert!(SloSpec::parse("hard=depth:x", &[], HZ).is_err());

        let list = SloSpec::parse_list("fe=50ms, pr=1s", &aliases, HZ).expect("parse");
        assert_eq!(list.len(), 2);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(SloSpec::parse("fe", &[], HZ).is_err());
        assert!(SloSpec::parse("nope=50ms", &[], HZ).is_err());
        assert!(SloSpec::parse("slot1=50", &[], HZ).is_err(), "missing unit");
        assert!(SloSpec::parse("slot1=bogus:1ms", &[], HZ).is_err());
        assert!(SloSpec::parse("slot9=50ms", &[], HZ).is_err(), "slot out of range");
    }

    #[test]
    fn deadline_clause_counts_misses_and_slack() {
        let mut attr = Attribution::default();
        for (release, finish) in [(0u64, 40u64), (100, 190), (200, 330)] {
            attr.push(&TraceEvent::JobReleased { cycle: release, slot: slot(1) });
            attr.push(&TraceEvent::JobStarted { cycle: release, slot: slot(1) });
            attr.push(&TraceEvent::JobFinished {
                cycle: finish,
                slot: slot(1),
                busy_cycles: finish - release,
                preemptions: 0,
            });
        }
        let preempt = PreemptionStats::default();
        let spec = SloSpec::parse("slot1=100cy", &[], HZ).expect("parse");
        let report = spec.evaluate(&attr, &preempt);
        assert!(!report.passed, "one response (130cy) busts the 100cy deadline");
        assert!((report.miss_rate - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(report.slack.count(), 3);

        let lenient = SloSpec::parse("slot1=100cy+miss:0.5", &[], HZ).expect("parse");
        assert!(lenient.evaluate(&attr, &preempt).passed);
    }

    #[test]
    fn latency_queue_and_jobs_clauses() {
        let mut attr = Attribution::default();
        attr.push(&TraceEvent::JobReleased { cycle: 0, slot: slot(1) });
        attr.push(&TraceEvent::JobStarted { cycle: 70, slot: slot(1) });
        attr.push(&TraceEvent::JobFinished {
            cycle: 100,
            slot: slot(1),
            busy_cycles: 30,
            preemptions: 0,
        });
        let mut preempt = PreemptionStats::default();
        preempt.push(&TraceEvent::Preempted {
            victim: slot(3),
            winner: slot(1),
            layer: 0,
            request: 10,
            t1: 25,
            t2: 30,
        });

        let ok = SloSpec::parse("slot1=latency:60cy+queue:80cy+jobs:1", &[], HZ).expect("parse");
        assert!(ok.evaluate(&attr, &preempt).passed);

        let tight = SloSpec::parse("slot1=latency:50cy", &[], HZ).expect("parse");
        let r = tight.evaluate(&attr, &preempt);
        assert!(!r.passed, "worst winning latency is 55cy: {:?}", r.clauses);

        let starved = SloSpec::parse("slot1=jobs:2", &[], HZ).expect("parse");
        assert!(!starved.evaluate(&attr, &preempt).passed);
    }

    #[test]
    fn sched_task_selectors_use_queue_delay() {
        let mut attr = Attribution::default();
        attr.push(&TraceEvent::SchedAdmitted { cycle: 0, task: 3, job: 1, queue_depth: 0 });
        attr.push(&TraceEvent::SchedBound {
            cycle: 900,
            task: 3,
            job: 1,
            slot: slot(2),
            preempting: false,
            reload_cycles: 0,
        });
        let preempt = PreemptionStats::default();
        let ok = SloSpec::parse("task3=queue:3us+jobs:1", &[], HZ).expect("parse");
        assert!(ok.evaluate(&attr, &preempt).passed);
        let tight = SloSpec::parse("task3=queue:2us", &[], HZ).expect("parse");
        assert!(!tight.evaluate(&attr, &preempt).passed);
        // Deadline clauses need slot-level completion data.
        let bad = SloSpec::parse("task3=50ms", &[], HZ).expect("parse");
        assert!(!bad.evaluate(&attr, &preempt).passed);
    }

    #[test]
    fn lane_selectors_and_share_clauses_use_spans() {
        use crate::span::{request_detail, request_span_id, span_id, NO_CORE};
        let mk = |request: u64, stage: SpanStage, seq: u32, start: u64, end: u64, detail: u64| {
            TraceEvent::Span {
                id: span_id(request, stage, seq),
                parent: if stage == SpanStage::Request { 0 } else { request_span_id(request) },
                request,
                stage,
                start,
                end,
                core: NO_CORE,
                detail,
            }
        };
        let mut spans = SpanAnalysis::new();
        // Hard request: 1000cy total, 300 queue (residual), 50 reload,
        // 450 exec, 200 preempted.
        spans.push(&mk(1, SpanStage::Reload, 0, 300, 350, 0));
        spans.push(&mk(1, SpanStage::Exec, 0, 350, 600, 0));
        spans.push(&mk(1, SpanStage::Preempted, 0, 600, 800, 0));
        spans.push(&mk(1, SpanStage::Exec, 1, 800, 1000, 0));
        spans.push(&mk(1, SpanStage::Request, 0, 0, 1000, request_detail(true, 0)));

        let attr = Attribution::default();
        let preempt = PreemptionStats::default();

        let spec = SloSpec::parse("hard=2000cy+jobs:1+queue_share:<0.5", &[], HZ).expect("parse");
        assert_eq!(spec.sel, TaskSel::Lane { hard: true });
        assert_eq!(spec.max_shares, vec![(SpanStage::Queue, 0.5)]);
        let r = spec.evaluate_with_spans(&attr, &preempt, Some(&spans));
        assert!(r.passed, "{:?}", r.clauses);
        assert_eq!(r.slack.count(), 1);

        // Aggregate queue share is 0.3 — a 0.2 bound must fail.
        let tight = SloSpec::parse("hard=queue_share:0.2", &[], HZ).expect("parse");
        assert!(!tight.evaluate_with_spans(&attr, &preempt, Some(&spans)).passed);

        // Lane clauses without span data fail loudly instead of passing
        // vacuously.
        assert!(!spec.evaluate(&attr, &preempt).passed);

        // Share clauses need a lane selector.
        let misdirected = SloSpec::parse("slot1=queue_share:<0.5", &[], HZ).expect("parse");
        assert!(!misdirected.evaluate_with_spans(&attr, &preempt, Some(&spans)).passed);

        // Empty be lane: deadline clause fails (no requests), jobs too.
        let be = SloSpec::parse("be=1ms+jobs:1", &[], HZ).expect("parse");
        assert!(!be.evaluate_with_spans(&attr, &preempt, Some(&spans)).passed);

        // Latency clauses stay slot-scoped.
        let lat = SloSpec::parse("hard=latency:10us", &[], HZ).expect("parse");
        assert!(!lat.evaluate_with_spans(&attr, &preempt, Some(&spans)).passed);

        assert!(SloSpec::parse("hard=queue_share:1.5", &[], HZ).is_err());
    }

    #[test]
    fn deadline_stats_fold_met_and_missed() {
        let mut d = DeadlineStats::default();
        d.push(&TraceEvent::DeadlineMet { cycle: 10, slot: slot(1), deadline: 15, slack: 5 });
        d.push(&TraceEvent::DeadlineMissed { cycle: 20, slot: slot(1), deadline: 15, overrun: 5 });
        d.push(&TraceEvent::JobReleased { cycle: 0, slot: slot(1) });
        assert_eq!((d.met, d.missed), (1, 1));
        assert_eq!(d.per_slot_met[1], 1);
        assert_eq!(d.per_slot_missed[1], 1);
        assert_eq!(d.slack.max(), 5);
        assert_eq!(d.overrun.max(), 5);
    }
}
