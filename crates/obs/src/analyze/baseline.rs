//! Perf-baseline regression gate: compares a fresh `metrics-v1` snapshot
//! against a committed baseline (`BENCH_<name>.json`) under per-metric
//! tolerance rules.
//!
//! The simulator is deterministic — every cycle-domain counter, gauge and
//! histogram must reproduce **exactly** — so the default rule set is
//! `Exact` for everything except wall-clock throughput metrics
//! (`*macs_per_s`, `*speedup*`), which get relative tolerances, and
//! environment facts (`threads`), which are ignored.

use std::fmt;

use crate::metrics::MetricsSnapshot;

/// How one metric is compared.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RuleKind {
    /// Baseline and fresh value must be identical.
    Exact,
    /// Relative tolerance: with `higher_is_better`, fail when
    /// `fresh < baseline · (1 − tol)`; otherwise fail when
    /// `fresh > baseline · (1 + tol)`. Drift in the good direction never
    /// fails.
    RelTol {
        /// Allowed relative drift in the bad direction.
        tol: f64,
        /// Whether larger values are better.
        higher_is_better: bool,
    },
    /// Not compared at all (environment facts).
    Ignore,
}

/// A `(pattern, rule)` pair. Patterns are glob-lite: `*` matches any
/// substring (including empty), everything else is literal. The first
/// matching rule in the list wins.
#[derive(Debug, Clone)]
pub struct GateRule {
    /// Glob-lite pattern over flattened metric keys.
    pub pattern: String,
    /// Comparison rule for matching keys.
    pub kind: RuleKind,
}

impl GateRule {
    /// Builds a rule.
    #[must_use]
    pub fn new(pattern: impl Into<String>, kind: RuleKind) -> Self {
        Self { pattern: pattern.into(), kind }
    }
}

/// Glob-lite match: `*` is the only metacharacter, matching any substring.
#[must_use]
pub fn glob_match(pattern: &str, key: &str) -> bool {
    let mut parts = pattern.split('*');
    let first = parts.next().unwrap_or("");
    if !key.starts_with(first) {
        return false;
    }
    let mut rest = &key[first.len()..];
    let mut parts = parts.peekable();
    while let Some(part) = parts.next() {
        if parts.peek().is_none() {
            // Last segment must anchor at the end.
            return rest.ends_with(part);
        }
        match rest.find(part) {
            Some(i) => rest = &rest[i + part.len()..],
            None => return false,
        }
    }
    // Pattern had no '*' at all: exact match required.
    rest.is_empty()
}

/// The default rule set for this repo's bench snapshots (see module doc).
#[must_use]
pub fn default_rules() -> Vec<GateRule> {
    vec![
        GateRule::new("counters.threads", RuleKind::Ignore),
        // Host self-profiling is wall-clock (non-deterministic by design);
        // never gate on it.
        GateRule::new("gauges.hostprof*", RuleKind::Ignore),
        GateRule::new("gauges.*macs_per_s", RuleKind::RelTol { tol: 0.45, higher_is_better: true }),
        GateRule::new("gauges.*speedup*", RuleKind::RelTol { tol: 0.35, higher_is_better: true }),
        GateRule::new("*", RuleKind::Exact),
    ]
}

/// A flattened metric value: counters and histogram integer facets stay
/// in the integer domain so `Exact` never suffers float rounding.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Val {
    Int(u128),
    Num(f64),
}

impl Val {
    fn as_f64(self) -> f64 {
        match self {
            Val::Int(v) => v as f64,
            Val::Num(v) => v,
        }
    }
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::Int(v) => write!(f, "{v}"),
            Val::Num(v) => write!(f, "{v}"),
        }
    }
}

/// Flattens a snapshot to comparable scalars: `counters.<k>`,
/// `gauges.<k>`, and `histograms.<k>.{count,sum,min,max}` (the exact
/// facets; derived percentiles are not re-compared).
fn flatten(snap: &MetricsSnapshot) -> Vec<(String, Val)> {
    let mut out = Vec::new();
    for (k, v) in snap.metrics.counters() {
        out.push((format!("counters.{k}"), Val::Int(u128::from(v))));
    }
    for (k, v) in snap.metrics.gauges() {
        out.push((format!("gauges.{k}"), Val::Num(v)));
    }
    for (k, h) in snap.metrics.histograms() {
        out.push((format!("histograms.{k}.count"), Val::Int(u128::from(h.count()))));
        out.push((format!("histograms.{k}.sum"), Val::Int(h.sum())));
        out.push((format!("histograms.{k}.min"), Val::Int(u128::from(h.min()))));
        out.push((format!("histograms.{k}.max"), Val::Int(u128::from(h.max()))));
    }
    out
}

/// One compared metric's verdict.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Identical (or within tolerance).
    Ok,
    /// Within tolerance but not identical (tolerant rules only).
    Drift,
    /// Outside tolerance, or an exact metric changed.
    Regressed,
    /// Present in the baseline, absent from the fresh run.
    Missing,
    /// Absent from the baseline (new metric — informational).
    New,
    /// Matched an `Ignore` rule.
    Ignored,
}

/// One flattened metric's comparison.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Flattened key (`counters.…`, `gauges.…`, `histograms.….max`).
    pub key: String,
    /// The verdict.
    pub verdict: Verdict,
    /// Human-readable `baseline → fresh` detail.
    pub detail: String,
}

/// The gate's overall result.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// Snapshot name (from the baseline).
    pub name: String,
    /// Every non-`Ok` finding, plus one `Ok` count in `compared`.
    pub findings: Vec<Finding>,
    /// Metrics compared (excluding ignored).
    pub compared: usize,
    /// Count of `Regressed` + `Missing` findings.
    pub regressions: usize,
    /// `regressions == 0`.
    pub passed: bool,
}

impl GateReport {
    /// Renders a human-readable report, one line per non-`Ok` finding.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "gate {}: {} compared, {} regression(s) — {}\n",
            self.name,
            self.compared,
            self.regressions,
            if self.passed { "PASS" } else { "FAIL" }
        ));
        for f in &self.findings {
            if f.verdict == Verdict::Ignored {
                continue;
            }
            out.push_str(&format!("  [{:?}] {}: {}\n", f.verdict, f.key, f.detail));
        }
        out
    }
}

fn rule_for<'r>(rules: &'r [GateRule], key: &str) -> Option<&'r GateRule> {
    rules.iter().find(|r| glob_match(&r.pattern, key))
}

/// Compares `fresh` against `baseline` under `rules` (first match wins;
/// unmatched keys are compared exactly).
#[must_use]
pub fn compare(
    baseline: &MetricsSnapshot,
    fresh: &MetricsSnapshot,
    rules: &[GateRule],
) -> GateReport {
    let base = flatten(baseline);
    let new = flatten(fresh);
    let mut findings = Vec::new();
    let mut compared = 0usize;
    let mut regressions = 0usize;

    let new_map: std::collections::BTreeMap<&str, Val> =
        new.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    let base_map: std::collections::BTreeMap<&str, Val> =
        base.iter().map(|(k, v)| (k.as_str(), *v)).collect();

    for (key, bval) in &base {
        let kind = rule_for(rules, key).map_or(RuleKind::Exact, |r| r.kind);
        if kind == RuleKind::Ignore {
            findings.push(Finding {
                key: key.clone(),
                verdict: Verdict::Ignored,
                detail: "ignored".into(),
            });
            continue;
        }
        compared += 1;
        let Some(fval) = new_map.get(key.as_str()) else {
            regressions += 1;
            findings.push(Finding {
                key: key.clone(),
                verdict: Verdict::Missing,
                detail: format!("baseline {bval}, fresh run did not report it"),
            });
            continue;
        };
        match kind {
            RuleKind::Exact => {
                if bval != fval {
                    regressions += 1;
                    findings.push(Finding {
                        key: key.clone(),
                        verdict: Verdict::Regressed,
                        detail: format!("exact metric changed: {bval} → {fval}"),
                    });
                }
            }
            RuleKind::RelTol { tol, higher_is_better } => {
                let b = bval.as_f64();
                let f = fval.as_f64();
                let bad = if higher_is_better { f < b * (1.0 - tol) } else { f > b * (1.0 + tol) };
                if bad {
                    regressions += 1;
                    findings.push(Finding {
                        key: key.clone(),
                        verdict: Verdict::Regressed,
                        detail: format!(
                            "{b} → {f} ({:+.1}%, tolerance ±{:.0}%)",
                            (f - b) / b * 100.0,
                            tol * 100.0
                        ),
                    });
                } else if (f - b).abs() > f64::EPSILON * b.abs() {
                    findings.push(Finding {
                        key: key.clone(),
                        verdict: Verdict::Drift,
                        detail: format!("{b} → {f} ({:+.1}%)", (f - b) / b * 100.0),
                    });
                }
            }
            RuleKind::Ignore => unreachable!("handled above"),
        }
    }
    for (key, fval) in &new {
        if !base_map.contains_key(key.as_str())
            && rule_for(rules, key).map_or(RuleKind::Exact, |r| r.kind) != RuleKind::Ignore
        {
            findings.push(Finding {
                key: key.clone(),
                verdict: Verdict::New,
                detail: format!("new metric (fresh {fval}), not in baseline"),
            });
        }
    }

    GateReport {
        name: baseline.name.clone(),
        findings,
        compared,
        regressions,
        passed: regressions == 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;

    fn snap(name: &str, f: impl FnOnce(&mut Metrics)) -> MetricsSnapshot {
        let mut m = Metrics::new();
        f(&mut m);
        MetricsSnapshot::new(name, m)
    }

    #[test]
    fn glob_lite_semantics() {
        assert!(glob_match("*", "anything.at.all"));
        assert!(glob_match("gauges.*macs_per_s", "gauges.fe.fast_1t_macs_per_s"));
        assert!(!glob_match("gauges.*macs_per_s", "gauges.fe.macs"));
        assert!(glob_match("counters.threads", "counters.threads"));
        assert!(!glob_match("counters.threads", "counters.threads2"));
        assert!(glob_match("a*b*c", "aXbYc"));
        assert!(!glob_match("a*b*c", "aXcYb"));
    }

    #[test]
    fn exact_rule_flags_any_change() {
        let base = snap("t", |m| {
            m.inc("jobs", 10);
            m.observe("lat", 100);
        });
        let fresh = snap("t", |m| {
            m.inc("jobs", 11);
            m.observe("lat", 100);
        });
        let report = compare(&base, &fresh, &default_rules());
        assert!(!report.passed);
        assert_eq!(report.regressions, 1);
        assert!(report.findings.iter().any(|f| f.key == "counters.jobs"));
        // Histogram facets compared exactly and matched.
        assert!(report.render().contains("FAIL"));

        let same = compare(&base, &base.clone(), &default_rules());
        assert!(same.passed);
    }

    #[test]
    fn reltol_allows_drift_catches_slowdown() {
        let base = snap("t", |m| m.set_gauge("fe.fast_1t_macs_per_s", 1.0e9));
        let ok = snap("t", |m| m.set_gauge("fe.fast_1t_macs_per_s", 0.6e9));
        let bad = snap("t", |m| m.set_gauge("fe.fast_1t_macs_per_s", 0.5e9));
        let faster = snap("t", |m| m.set_gauge("fe.fast_1t_macs_per_s", 3.0e9));
        let rules = default_rules();
        assert!(compare(&base, &ok, &rules).passed, "-40% within 45% tolerance");
        assert!(!compare(&base, &bad, &rules).passed, "2x slowdown must fail");
        assert!(compare(&base, &faster, &rules).passed, "speedups never fail");
    }

    #[test]
    fn missing_fails_new_informs_ignored_skips() {
        let base = snap("t", |m| {
            m.inc("gone", 1);
            m.inc("threads", 8);
        });
        let fresh = snap("t", |m| {
            m.inc("arrived", 2);
            m.inc("threads", 1);
        });
        let report = compare(&base, &fresh, &default_rules());
        assert!(!report.passed, "missing baseline metric is a regression");
        assert_eq!(report.regressions, 1);
        let verdict = |k: &str| {
            report.findings.iter().find(|f| f.key.ends_with(k)).map(|f| f.verdict.clone())
        };
        assert_eq!(verdict("gone"), Some(Verdict::Missing));
        assert_eq!(verdict("arrived"), Some(Verdict::New));
        assert_eq!(verdict("threads"), Some(Verdict::Ignored), "threads never compared");
    }
}
