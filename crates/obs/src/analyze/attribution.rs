//! Where did each job's latency go? Per-slot occupancy/utilization and a
//! queued / loading / computing / preempted breakdown, plus scheduler
//! queue-delay attribution for runs routed through the admission
//! scheduler.

use std::collections::{BTreeMap, VecDeque};

use inca_isa::TASK_SLOTS;

use crate::metrics::Histogram;
use crate::trace::TraceEvent;

/// Per-slot accounting.
#[derive(Debug, Clone, Default)]
pub struct SlotAttribution {
    /// Jobs released into the slot.
    pub released: u64,
    /// Jobs that began executing.
    pub started: u64,
    /// Jobs that completed.
    pub finished: u64,
    /// Summed busy cycles of completed jobs.
    pub busy_cycles: u64,
    /// Release→start wait per job.
    pub queue_wait: Histogram,
    /// Release→finish response per job.
    pub response: Histogram,
    /// Distribution of completed jobs' busy cycles.
    pub busy: Histogram,
    /// Preemption pause per (preempt, resume) pair.
    pub paused: Histogram,
    /// Cycles spent stalled finishing the current op before backup (Σ t1).
    pub t1_cycles: u64,
    /// Cycles spent backing up (Σ t2).
    pub backup_cycles: u64,
    /// Cycles spent restoring (Σ t4).
    pub restore_cycles: u64,
    /// Program-reload DMA cycles charged by the scheduler on rebinds.
    pub reload_cycles: u64,
    /// `(finish_cycle, response_cycles)` per completed job, in completion
    /// order — the raw samples SLO evaluation runs on.
    pub responses: Vec<(u64, u64)>,
}

/// One job's latency, split by where it was spent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyBreakdown {
    /// Released but not yet started (slot busy or scheduler queue).
    pub queued: u64,
    /// State movement: backup + restore + program reloads.
    pub loading: u64,
    /// Executing instructions.
    pub computing: u64,
    /// Parked by a preemption (victim paused, winner running).
    pub preempted: u64,
}

/// Scheduler-level (logical task) accounting.
#[derive(Debug, Clone, Default)]
pub struct TaskAttribution {
    /// Jobs admitted into the task queue.
    pub admitted: u64,
    /// Jobs rejected or dropped.
    pub rejected: u64,
    /// Jobs bound to a physical slot.
    pub bound: u64,
    /// Admission→bind queue delay per job.
    pub queue_delay: Histogram,
    /// Σ reload cycles charged to this task's binds.
    pub reload_cycles: u64,
}

/// Whole-trace attribution state.
#[derive(Debug, Clone, Default)]
pub struct Attribution {
    /// Per physical slot.
    pub slots: [SlotAttribution; TASK_SLOTS],
    /// Per logical scheduler task (empty without a scheduler).
    pub tasks: BTreeMap<u32, TaskAttribution>,
    /// First cycle seen.
    pub first_cycle: u64,
    /// Last cycle seen (end of spans included).
    pub last_cycle: u64,
    seen_any: bool,
    pending_release: [VecDeque<u64>; TASK_SLOTS],
    in_flight_release: [Option<u64>; TASK_SLOTS],
    paused_since: [Option<u64>; TASK_SLOTS],
    pending_admit: BTreeMap<(u32, u64), u64>,
}

impl Attribution {
    fn window(&mut self, cycle: u64) {
        if !self.seen_any {
            self.first_cycle = cycle;
            self.seen_any = true;
        }
        self.first_cycle = self.first_cycle.min(cycle);
        self.last_cycle = self.last_cycle.max(cycle);
    }

    /// Folds one event into the attribution.
    pub fn push(&mut self, ev: &TraceEvent) {
        self.window(ev.cycle());
        match ev {
            TraceEvent::JobReleased { cycle, slot } => {
                self.slots[slot.index()].released += 1;
                self.pending_release[slot.index()].push_back(*cycle);
            }
            TraceEvent::JobStarted { cycle, slot } => {
                let i = slot.index();
                // A start while a job is already in flight is a resumed
                // segment from an imported trace — keep the original job.
                if self.in_flight_release[i].is_none() {
                    self.slots[i].started += 1;
                    let release = self.pending_release[i].pop_front().unwrap_or(*cycle);
                    self.slots[i].queue_wait.observe(cycle.saturating_sub(release));
                    self.in_flight_release[i] = Some(release);
                }
            }
            TraceEvent::JobFinished { cycle, slot, busy_cycles, .. } => {
                let i = slot.index();
                let s = &mut self.slots[i];
                s.finished += 1;
                s.busy_cycles += busy_cycles;
                s.busy.observe(*busy_cycles);
                let release = self.in_flight_release[i].take().unwrap_or(*cycle);
                let response = cycle.saturating_sub(release);
                s.response.observe(response);
                s.responses.push((*cycle, response));
                self.paused_since[i] = None;
            }
            TraceEvent::Preempted { victim, request, t1, t2, .. } => {
                let i = victim.index();
                let end = request + t1 + t2;
                self.window(end);
                self.slots[i].t1_cycles += t1;
                self.slots[i].backup_cycles += t2;
                self.paused_since[i] = Some(end);
            }
            TraceEvent::Resumed { slot, restore_start, t4 } => {
                let i = slot.index();
                self.window(restore_start + t4);
                self.slots[i].restore_cycles += t4;
                if let Some(since) = self.paused_since[i].take() {
                    self.slots[i].paused.observe(restore_start.saturating_sub(since));
                }
            }
            TraceEvent::SchedAdmitted { cycle, task, job, .. } => {
                self.tasks.entry(*task).or_default().admitted += 1;
                self.pending_admit.insert((*task, *job), *cycle);
            }
            TraceEvent::SchedRejected { task, .. } => {
                self.tasks.entry(*task).or_default().rejected += 1;
            }
            TraceEvent::SchedBound { cycle, task, job, slot, reload_cycles, .. } => {
                let t = self.tasks.entry(*task).or_default();
                t.bound += 1;
                t.reload_cycles += reload_cycles;
                self.slots[slot.index()].reload_cycles += reload_cycles;
                if let Some(admit) = self.pending_admit.remove(&(*task, *job)) {
                    t.queue_delay.observe(cycle.saturating_sub(admit));
                }
            }
            TraceEvent::InstrRetired { start, cycles, .. }
            | TraceEvent::ViMaterialized { start, cycles, .. } => {
                self.window(start + cycles);
            }
            _ => {}
        }
    }

    /// The observed trace window, in cycles (0 for an empty trace).
    #[must_use]
    pub fn window_cycles(&self) -> u64 {
        self.last_cycle.saturating_sub(self.first_cycle)
    }

    /// Fraction of the trace window `slot` spent executing instructions.
    #[must_use]
    pub fn utilization(&self, slot: usize) -> f64 {
        let w = self.window_cycles();
        if w == 0 {
            0.0
        } else {
            self.slots[slot].busy_cycles as f64 / w as f64
        }
    }

    /// Aggregate queued/loading/computing/preempted split for `slot`.
    #[must_use]
    pub fn breakdown(&self, slot: usize) -> LatencyBreakdown {
        let s = &self.slots[slot];
        LatencyBreakdown {
            queued: s.queue_wait.sum() as u64,
            loading: s.backup_cycles + s.restore_cycles + s.reload_cycles,
            computing: s.busy_cycles,
            preempted: s.paused.sum() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inca_isa::TaskSlot;

    fn slot(i: u8) -> TaskSlot {
        TaskSlot::new(i).unwrap()
    }

    #[test]
    fn queue_wait_response_and_busy_track_one_job() {
        let mut a = Attribution::default();
        a.push(&TraceEvent::JobReleased { cycle: 100, slot: slot(1) });
        a.push(&TraceEvent::JobStarted { cycle: 150, slot: slot(1) });
        a.push(&TraceEvent::JobFinished {
            cycle: 500,
            slot: slot(1),
            busy_cycles: 350,
            preemptions: 0,
        });
        let s = &a.slots[1];
        assert_eq!((s.released, s.started, s.finished), (1, 1, 1));
        assert_eq!(s.queue_wait.max(), 50);
        assert_eq!(s.response.max(), 400);
        assert_eq!(s.responses, vec![(500, 400)]);
        assert_eq!(a.window_cycles(), 400);
        assert!((a.utilization(1) - 350.0 / 400.0).abs() < 1e-12);
    }

    #[test]
    fn preemption_pause_and_breakdown() {
        let mut a = Attribution::default();
        a.push(&TraceEvent::JobReleased { cycle: 0, slot: slot(3) });
        a.push(&TraceEvent::JobStarted { cycle: 0, slot: slot(3) });
        a.push(&TraceEvent::Preempted {
            victim: slot(3),
            winner: slot(1),
            layer: 0,
            request: 100,
            t1: 20,
            t2: 30,
        });
        a.push(&TraceEvent::Resumed { slot: slot(3), restore_start: 400, t4: 10 });
        a.push(&TraceEvent::JobFinished {
            cycle: 600,
            slot: slot(3),
            busy_cycles: 440,
            preemptions: 1,
        });
        let b = a.breakdown(3);
        // Paused from backup end (150) to restore start (400).
        assert_eq!(b.preempted, 250);
        assert_eq!(b.loading, 30 + 10);
        assert_eq!(b.computing, 440);
        assert_eq!(b.queued, 0);
    }

    #[test]
    fn scheduler_queue_delay_pairs_admit_and_bind() {
        let mut a = Attribution::default();
        a.push(&TraceEvent::SchedAdmitted { cycle: 10, task: 2, job: 7, queue_depth: 1 });
        a.push(&TraceEvent::SchedRejected { cycle: 11, task: 2, reason: "queue-full" });
        a.push(&TraceEvent::SchedBound {
            cycle: 60,
            task: 2,
            job: 7,
            slot: slot(2),
            preempting: false,
            reload_cycles: 17,
        });
        let t = &a.tasks[&2];
        assert_eq!((t.admitted, t.rejected, t.bound), (1, 1, 1));
        assert_eq!(t.queue_delay.max(), 50);
        assert_eq!(t.reload_cycles, 17);
        assert_eq!(a.slots[2].reload_cycles, 17);
    }

    #[test]
    fn imported_resume_segments_do_not_double_count_starts() {
        let mut a = Attribution::default();
        a.push(&TraceEvent::JobReleased { cycle: 0, slot: slot(3) });
        a.push(&TraceEvent::JobStarted { cycle: 5, slot: slot(3) });
        // An imported trace may emit a second start for a resumed segment.
        a.push(&TraceEvent::JobStarted { cycle: 300, slot: slot(3) });
        a.push(&TraceEvent::JobFinished {
            cycle: 700,
            slot: slot(3),
            busy_cycles: 100,
            preemptions: 1,
        });
        let s = &a.slots[3];
        assert_eq!(s.started, 1);
        assert_eq!(s.response.max(), 700);
    }
}
