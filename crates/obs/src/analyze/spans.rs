//! Request-scoped span analysis: per-request critical-path extraction
//! over the causal spans emitted by the serving stack (DESIGN.md §5.7).
//!
//! Every tagged request produces one `Request` root span (gateway admit →
//! response) plus child spans for the lifecycle edges inside it. The
//! breakdown tiles the root **exactly**: `batch_wait`, `reload`, `exec`
//! and `preempted` are the summed child spans of those stages, and
//! `queue` is the residual `total − (batch_wait + reload + exec +
//! preempted)` — scheduler queue wait, slot wait and any engine stall all
//! land there, so the five parts always sum to the end-to-end latency by
//! construction.
//!
//! The exported registry uses the [`SPANS_SCHEMA`] (`inca-obs/spans-v1`)
//! envelope: identical shape to `metrics-v1`, cycle-domain counters per
//! lane/quantile (exact under the regression gate) plus aggregate share
//! gauges usable in SLO specs (`hard=queue_share:<0.2`).

use std::collections::BTreeMap;

use crate::metrics::Metrics;
pub use crate::metrics::SPANS_SCHEMA;
use crate::span::{split_request_detail, Span, SpanStage};
use crate::trace::TraceEvent;

/// One request's exact latency decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestBreakdown {
    /// The request (`RequestId::raw`).
    pub request: u64,
    /// Hard-deadline lane (`false` = best-effort).
    pub hard: bool,
    /// Tenant index (from the root span's detail word).
    pub tenant: u32,
    /// Serving core of the root span.
    pub core: u32,
    /// Gateway admission cycle.
    pub arrival: u64,
    /// Response cycle.
    pub finish: u64,
    /// Cycles waiting in a gateway batch buffer.
    pub batch_wait: u64,
    /// Program-reload DMA cycles.
    pub reload: u64,
    /// Cycles holding the datapath.
    pub exec: u64,
    /// Cycles preempted out (backup + parked + restore).
    pub preempted: u64,
    /// Cycles covered by explicit scheduler-queue spans (cross-check;
    /// the reported queue figure is the residual, see [`Self::queue`]).
    pub queue_measured: u64,
}

impl RequestBreakdown {
    /// End-to-end latency (admit → response).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.finish.saturating_sub(self.arrival)
    }

    /// Queue cycles, defined as the residual
    /// `total − batch_wait − reload − exec − preempted` so the five
    /// parts tile the total exactly.
    #[must_use]
    pub fn queue(&self) -> u64 {
        self.total()
            .saturating_sub(self.batch_wait)
            .saturating_sub(self.reload)
            .saturating_sub(self.exec)
            .saturating_sub(self.preempted)
    }

    /// The five parts, in report order; they sum to [`Self::total`].
    #[must_use]
    pub fn parts(&self) -> [(&'static str, u64); 5] {
        [
            ("queue", self.queue()),
            ("batch_wait", self.batch_wait),
            ("reload", self.reload),
            ("exec", self.exec),
            ("preempted", self.preempted),
        ]
    }
}

#[derive(Debug, Clone, Default)]
struct Acc {
    root: Option<(u64, u64, u64, u32)>, // (start, end, detail, core)
    batch_wait: u64,
    reload: u64,
    exec: u64,
    preempted: u64,
    queue_measured: u64,
}

/// Streaming span consumer; fold events in, read breakdowns out.
#[derive(Debug, Clone, Default)]
pub struct SpanAnalysis {
    /// Span events consumed.
    pub span_events: u64,
    per_request: BTreeMap<u64, Acc>,
}

impl SpanAnalysis {
    /// An empty analysis.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one event (non-span events are ignored).
    pub fn push(&mut self, ev: &TraceEvent) {
        let Some(span) = Span::from_event(ev) else { return };
        self.span_events += 1;
        let acc = self.per_request.entry(span.request).or_default();
        match span.stage {
            SpanStage::Request => {
                acc.root = Some((span.start, span.end, span.detail, span.core));
            }
            SpanStage::BatchWait => acc.batch_wait += span.cycles(),
            SpanStage::Queue => acc.queue_measured += span.cycles(),
            SpanStage::Reload => acc.reload += span.cycles(),
            SpanStage::Exec => acc.exec += span.cycles(),
            SpanStage::Preempted => acc.preempted += span.cycles(),
            SpanStage::Layer => {} // children of exec; already counted
        }
    }

    /// Whether any span was seen.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.span_events == 0
    }

    /// Requests whose spans were seen but whose root never closed
    /// (in-flight at trace end, or evicted from a full ring).
    #[must_use]
    pub fn incomplete(&self) -> u64 {
        self.per_request.values().filter(|a| a.root.is_none()).count() as u64
    }

    /// All completed requests' breakdowns, in request-id order.
    #[must_use]
    pub fn breakdowns(&self) -> Vec<RequestBreakdown> {
        self.per_request
            .iter()
            .filter_map(|(&request, acc)| {
                let (arrival, finish, detail, core) = acc.root?;
                let (hard, tenant) = split_request_detail(detail);
                Some(RequestBreakdown {
                    request,
                    hard,
                    tenant,
                    core,
                    arrival,
                    finish,
                    batch_wait: acc.batch_wait,
                    reload: acc.reload,
                    exec: acc.exec,
                    preempted: acc.preempted,
                    queue_measured: acc.queue_measured,
                })
            })
            .collect()
    }

    /// One lane's breakdowns, sorted by `(total latency, request id)`.
    #[must_use]
    pub fn lane(&self, hard: bool) -> Vec<RequestBreakdown> {
        let mut v: Vec<RequestBreakdown> =
            self.breakdowns().into_iter().filter(|b| b.hard == hard).collect();
        v.sort_by_key(|b| (b.total(), b.request));
        v
    }

    /// The lane request at quantile `q` (`0.0..=1.0`) of end-to-end
    /// latency, by the nearest-rank method — an **actual** request, so
    /// its parts sum exactly to its latency (unlike an interpolated
    /// percentile). `q = 0.99` with 100 requests picks rank 99.
    #[must_use]
    pub fn quantile(&self, hard: bool, q: f64) -> Option<RequestBreakdown> {
        let lane = self.lane(hard);
        if lane.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * lane.len() as f64).ceil() as usize;
        Some(lane[rank.max(1).min(lane.len()) - 1])
    }

    /// Aggregate share of `stage` in one lane's total latency
    /// (`Σ stage-cycles / Σ total-cycles` over all completed requests).
    /// `None` when the lane has no requests or zero total latency.
    #[must_use]
    pub fn lane_share(&self, hard: bool, stage: SpanStage) -> Option<f64> {
        let lane = self.lane(hard);
        let total: u64 = lane.iter().map(RequestBreakdown::total).sum();
        if total == 0 {
            return None;
        }
        let part: u64 = lane
            .iter()
            .map(|b| match stage {
                SpanStage::Queue => b.queue(),
                SpanStage::BatchWait => b.batch_wait,
                SpanStage::Reload => b.reload,
                SpanStage::Exec => b.exec,
                SpanStage::Preempted => b.preempted,
                SpanStage::Request | SpanStage::Layer => b.total(),
            })
            .sum();
        Some(part as f64 / total as f64)
    }

    /// The `spans-v1` registry: per-lane request counts and latency
    /// histograms, exact per-quantile critical paths
    /// (`spans.<lane>.<q>.{total,queue,batch_wait,reload,exec,preempted}`
    /// counters, all cycle-domain), and aggregate share gauges.
    #[must_use]
    pub fn metrics(&self) -> Metrics {
        let mut m = Metrics::new();
        m.inc("spans.events", self.span_events);
        m.inc("spans.requests", self.breakdowns().len() as u64);
        m.inc("spans.incomplete", self.incomplete());
        for (lane_name, hard) in [("hard", true), ("be", false)] {
            let lane = self.lane(hard);
            m.inc(&format!("spans.{lane_name}.requests"), lane.len() as u64);
            if lane.is_empty() {
                continue;
            }
            for b in &lane {
                m.observe(&format!("spans.{lane_name}.total_cycles"), b.total());
                m.observe(&format!("spans.{lane_name}.queue_cycles"), b.queue());
                m.observe(&format!("spans.{lane_name}.exec_cycles"), b.exec);
            }
            for (qname, q) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99), ("max", 1.0)] {
                let Some(b) = self.quantile(hard, q) else { continue };
                let pre = format!("spans.{lane_name}.{qname}");
                m.inc(&format!("{pre}.request"), b.request);
                m.inc(&format!("{pre}.total"), b.total());
                for (part, cycles) in b.parts() {
                    m.inc(&format!("{pre}.{part}"), cycles);
                }
            }
            for stage in [
                SpanStage::Queue,
                SpanStage::BatchWait,
                SpanStage::Reload,
                SpanStage::Exec,
                SpanStage::Preempted,
            ] {
                if let Some(share) = self.lane_share(hard, stage) {
                    let key = match stage {
                        SpanStage::Queue => "queue_share",
                        SpanStage::BatchWait => "batch_share",
                        SpanStage::Reload => "reload_share",
                        SpanStage::Exec => "exec_share",
                        _ => "preempt_share",
                    };
                    m.set_gauge(&format!("spans.{lane_name}.{key}"), share);
                }
            }
        }
        m
    }

    /// Human-readable critical-path report (the `inca-analyze --spans`
    /// default view). `clock_hz` converts cycles to µs for display.
    #[must_use]
    pub fn render(&self, clock_hz: u64) -> String {
        let cycles_per_us = clock_hz as f64 / 1e6;
        let us = |cy: u64| cy as f64 / cycles_per_us;
        let mut out = String::new();
        out.push_str(&format!(
            "spans: {} events, {} completed requests ({} incomplete)\n",
            self.span_events,
            self.breakdowns().len(),
            self.incomplete(),
        ));
        for (lane_name, hard) in [("hard", true), ("be", false)] {
            let lane = self.lane(hard);
            if lane.is_empty() {
                continue;
            }
            out.push_str(&format!("{lane_name} lane: {} requests\n", lane.len()));
            for (qname, q) in [("p50", 0.50), ("p99", 0.99), ("max", 1.0)] {
                let Some(b) = self.quantile(hard, q) else { continue };
                let total = b.total().max(1);
                let mut parts = String::new();
                for (name, cy) in b.parts() {
                    if cy == 0 {
                        continue;
                    }
                    parts.push_str(&format!(
                        " {name} {:.1}us ({:.0}%)",
                        us(cy),
                        cy as f64 / total as f64 * 100.0
                    ));
                }
                out.push_str(&format!(
                    "  {qname}: request {} (tenant {}, core {}) total {:.1}us ={}\n",
                    b.request,
                    b.tenant,
                    b.core,
                    us(b.total()),
                    parts,
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{request_detail, request_span_id, span_id, NO_CORE};

    fn span(
        request: u64,
        stage: SpanStage,
        seq: u32,
        start: u64,
        end: u64,
        detail: u64,
    ) -> TraceEvent {
        TraceEvent::Span {
            id: span_id(request, stage, seq),
            parent: if stage == SpanStage::Request { 0 } else { request_span_id(request) },
            request,
            stage,
            start,
            end,
            core: NO_CORE,
            detail,
        }
    }

    fn sample() -> SpanAnalysis {
        let mut a = SpanAnalysis::new();
        // Request 1 (hard): 0..1000 total; queue 100..300 measured,
        // reload 300..350, exec 350..600 and 800..1000, preempted 600..800.
        a.push(&span(1, SpanStage::Queue, 0, 0, 300, 0));
        a.push(&span(1, SpanStage::Reload, 0, 300, 350, 0));
        a.push(&span(1, SpanStage::Exec, 0, 350, 600, 0));
        a.push(&span(1, SpanStage::Preempted, 0, 600, 800, 0));
        a.push(&span(1, SpanStage::Exec, 1, 800, 1000, 0));
        a.push(&span(1, SpanStage::Request, 0, 0, 1000, request_detail(true, 2)));
        // Request 2 (be): batched, shorter.
        a.push(&span(2, SpanStage::BatchWait, 0, 0, 50, 0));
        a.push(&span(2, SpanStage::Exec, 0, 80, 200, 0));
        a.push(&span(2, SpanStage::Request, 0, 0, 200, request_detail(false, 0)));
        a
    }

    #[test]
    fn parts_tile_the_total_exactly() {
        let a = sample();
        for b in a.breakdowns() {
            let sum: u64 = b.parts().iter().map(|(_, c)| c).sum();
            assert_eq!(sum, b.total(), "request {} must tile exactly", b.request);
        }
        let hard = a.quantile(true, 0.99).unwrap();
        assert_eq!(hard.request, 1);
        assert_eq!(hard.total(), 1000);
        assert_eq!(hard.exec, 450);
        assert_eq!(hard.preempted, 200);
        assert_eq!(hard.reload, 50);
        assert_eq!(hard.batch_wait, 0);
        assert_eq!(hard.queue(), 300); // residual: the measured 300cy queue
        assert_eq!(hard.queue_measured, 300);
    }

    #[test]
    fn lanes_are_split_by_root_detail() {
        let a = sample();
        assert_eq!(a.lane(true).len(), 1);
        assert_eq!(a.lane(false).len(), 1);
        let be = a.quantile(false, 0.5).unwrap();
        assert_eq!((be.request, be.tenant, be.batch_wait), (2, 0, 50));
        // be queue residual = 200 - 50 - 120 = 30 (the 50..80 slot wait).
        assert_eq!(be.queue(), 30);
    }

    #[test]
    fn shares_and_metrics_are_exported() {
        let a = sample();
        let share = a.lane_share(true, SpanStage::Queue).unwrap();
        assert!((share - 0.3).abs() < 1e-12);
        let m = a.metrics();
        assert_eq!(m.counter("spans.requests"), 2);
        assert_eq!(m.counter("spans.hard.p99.total"), 1000);
        assert_eq!(m.counter("spans.hard.p99.queue"), 300);
        assert_eq!(m.counter("spans.hard.p99.exec"), 450);
        assert_eq!(m.gauge("spans.hard.queue_share"), Some(0.3));
        assert!(m.histogram("spans.be.total_cycles").is_some());
    }

    #[test]
    fn incomplete_requests_are_counted_not_reported() {
        let mut a = sample();
        a.push(&span(9, SpanStage::Queue, 0, 0, 10, 0)); // no root
        assert_eq!(a.incomplete(), 1);
        assert_eq!(a.breakdowns().len(), 2);
    }

    #[test]
    fn render_names_the_critical_path() {
        let text = sample().render(1_000_000);
        assert!(text.contains("hard lane: 1 requests"));
        assert!(text.contains("request 1"));
        assert!(text.contains("queue"));
    }
}
