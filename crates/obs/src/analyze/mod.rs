//! Trace analysis: streaming consumers of [`TraceEvent`] rings or
//! re-imported trace JSON that compute preemption-latency accounting,
//! occupancy/queue-delay attribution, deadline bookkeeping, declarative
//! SLO evaluation and baseline regression gating (DESIGN.md §5.4).
//!
//! The entry point is [`Analyzer`]: feed it events (from a live
//! [`crate::TraceBuffer`] or [`chrome_in::import`]) and read back
//! structured stats, a rendered summary, or a `metrics-v1` registry whose
//! deadline accounting is derived exactly like the runtime's
//! `runtime.deadlines.*` counters — so a trace-driven analysis can be
//! cross-checked byte-for-byte against `Runtime::report()`.

pub mod attribution;
pub mod baseline;
pub mod chrome_in;
pub mod preemption;
pub mod slo;
pub mod spans;

pub use attribution::{Attribution, LatencyBreakdown, SlotAttribution, TaskAttribution};
pub use baseline::{
    compare, default_rules, glob_match, Finding, GateReport, GateRule, RuleKind, Verdict,
};
pub use chrome_in::{import, ImportedProcess, DEFAULT_CLOCK_HZ};
pub use preemption::{DriftReport, PreemptionStats, T2Model};
pub use slo::{ClauseResult, DeadlineStats, SloReport, SloSpec, TaskSel};
pub use spans::{RequestBreakdown, SpanAnalysis, SPANS_SCHEMA};

use crate::metrics::Metrics;
use crate::trace::TraceEvent;

/// Streaming trace analyzer: one pass over an event stream, all the
/// derived accounting at the end.
#[derive(Debug, Clone, Default)]
pub struct Analyzer {
    /// Interrupt strategy named by the trace's [`TraceEvent::EngineMeta`].
    pub strategy: Option<String>,
    /// Virtual clock from the same event.
    pub clock_hz: Option<u64>,
    /// Events consumed.
    pub events_seen: u64,
    /// Preemption-phase accounting.
    pub preemption: PreemptionStats,
    /// Occupancy / queue-delay attribution.
    pub attribution: Attribution,
    /// Deadline accounting (mirrors the runtime's derivation).
    pub deadlines: DeadlineStats,
    /// Request-scoped span accounting (DESIGN.md §5.7).
    pub spans: SpanAnalysis,
}

impl Analyzer {
    /// An empty analyzer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one event into every sub-analysis.
    pub fn push(&mut self, ev: &TraceEvent) {
        self.events_seen += 1;
        if let TraceEvent::EngineMeta { strategy, clock_hz, .. } = ev {
            self.strategy = Some(strategy.clone());
            self.clock_hz = Some(*clock_hz);
        }
        self.preemption.push(ev);
        self.attribution.push(ev);
        self.deadlines.push(ev);
        self.spans.push(ev);
    }

    /// Consumes a whole event stream.
    pub fn consume<'a>(&mut self, events: impl IntoIterator<Item = &'a TraceEvent>) {
        for ev in events {
            self.push(ev);
        }
    }

    /// The clock used for µs rendering (default 300 MHz).
    #[must_use]
    pub fn clock_hz_or_default(&self) -> u64 {
        self.clock_hz.unwrap_or(DEFAULT_CLOCK_HZ)
    }

    /// Exports the analysis as an `analyze.`-prefixed metrics registry.
    ///
    /// The deadline keys (`analyze.deadlines.met` / `.missed`,
    /// `analyze.deadline.slack_cycles` / `.overrun_cycles`) use the same
    /// derivation as the runtime's `runtime.deadlines.*` /
    /// `runtime.deadline.*` — for a drained run (no outstanding
    /// deadline-carrying jobs) the values match byte for byte.
    #[must_use]
    pub fn metrics(&self) -> Metrics {
        let mut m = Metrics::new();
        m.inc("analyze.events", self.events_seen);
        m.inc("analyze.window_cycles", self.attribution.window_cycles());
        m.inc("analyze.preemptions", self.preemption.preemptions);
        m.inc("analyze.resumes", self.preemption.resumes);
        m.inc("analyze.deadlines.met", self.deadlines.met);
        m.inc("analyze.deadlines.missed", self.deadlines.missed);
        if self.deadlines.slack.count() > 0 {
            m.insert_histogram("analyze.deadline.slack_cycles", self.deadlines.slack.clone());
        }
        if self.deadlines.overrun.count() > 0 {
            m.insert_histogram("analyze.deadline.overrun_cycles", self.deadlines.overrun.clone());
        }
        for (name, h) in [
            ("analyze.preempt.t1_cycles", &self.preemption.t1),
            ("analyze.preempt.t2_cycles", &self.preemption.t2),
            ("analyze.preempt.t4_cycles", &self.preemption.t4),
            ("analyze.preempt.latency_cycles", &self.preemption.latency),
            ("analyze.preempt.cost_cycles", &self.preemption.cost),
        ] {
            if h.count() > 0 {
                m.insert_histogram(name, h.clone());
            }
        }
        for (i, s) in self.attribution.slots.iter().enumerate() {
            if s.released == 0 && s.started == 0 && s.finished == 0 {
                continue;
            }
            m.inc(&format!("analyze.slot{i}.released"), s.released);
            m.inc(&format!("analyze.slot{i}.started"), s.started);
            m.inc(&format!("analyze.slot{i}.finished"), s.finished);
            m.inc(&format!("analyze.slot{i}.busy_cycles"), s.busy_cycles);
            m.set_gauge(&format!("analyze.slot{i}.utilization"), self.attribution.utilization(i));
            if s.queue_wait.count() > 0 {
                m.insert_histogram(
                    &format!("analyze.slot{i}.queue_wait_cycles"),
                    s.queue_wait.clone(),
                );
            }
            if s.response.count() > 0 {
                m.insert_histogram(&format!("analyze.slot{i}.response_cycles"), s.response.clone());
            }
        }
        for (task, t) in &self.attribution.tasks {
            m.inc(&format!("analyze.task{task}.admitted"), t.admitted);
            m.inc(&format!("analyze.task{task}.rejected"), t.rejected);
            m.inc(&format!("analyze.task{task}.bound"), t.bound);
            if t.queue_delay.count() > 0 {
                m.insert_histogram(
                    &format!("analyze.task{task}.queue_delay_cycles"),
                    t.queue_delay.clone(),
                );
            }
        }
        if !self.spans.is_empty() {
            m.absorb("analyze.", &self.spans.metrics());
        }
        m
    }

    /// Renders a human-readable report (the `inca-analyze` default view).
    #[must_use]
    pub fn render(&self) -> String {
        let cycles_per_us = self.clock_hz_or_default() as f64 / 1e6;
        let us = |cy: u64| cy as f64 / cycles_per_us;
        let mut out = String::new();
        out.push_str(&format!(
            "strategy {}  clock {} MHz  window {:.1} ms  events {}\n",
            self.strategy.as_deref().unwrap_or("unknown"),
            self.clock_hz_or_default() / 1_000_000,
            us(self.attribution.window_cycles()) / 1e3,
            self.events_seen,
        ));
        out.push_str(&format!(
            "deadlines: {} met, {} missed\n",
            self.deadlines.met, self.deadlines.missed
        ));
        let p = &self.preemption;
        out.push_str(&format!("preemptions: {} ({} resumed)\n", p.preemptions, p.resumes));
        if p.preemptions > 0 {
            for (label, h) in [
                ("t1 finish-op", &p.t1),
                ("t2 backup   ", &p.t2),
                ("t4 restore  ", &p.t4),
                ("latency t1+t2", &p.latency),
                ("cost    t2+t4", &p.cost),
            ] {
                if h.count() == 0 {
                    continue;
                }
                out.push_str(&format!(
                    "  {label}: p50 {:.1} us, p95 {:.1} us, p99 {:.1} us, worst {:.1} us ({} samples)\n",
                    us(h.p50()),
                    us(h.p95()),
                    us(h.p99()),
                    us(h.max()),
                    h.count(),
                ));
            }
        }
        for (i, s) in self.attribution.slots.iter().enumerate() {
            if s.released == 0 && s.started == 0 && s.finished == 0 {
                continue;
            }
            let b = self.attribution.breakdown(i);
            out.push_str(&format!(
                "slot{i}: {} released, {} finished, util {:.1}% | queued {:.1} us, loading {:.1} us, computing {:.1} us, preempted {:.1} us\n",
                s.released,
                s.finished,
                self.attribution.utilization(i) * 100.0,
                us(b.queued),
                us(b.loading),
                us(b.computing),
                us(b.preempted),
            ));
        }
        for (task, t) in &self.attribution.tasks {
            out.push_str(&format!(
                "task{task}: {} admitted, {} rejected, {} bound, worst queue delay {:.1} us\n",
                t.admitted,
                t.rejected,
                t.bound,
                us(t.queue_delay.max()),
            ));
        }
        if !self.spans.is_empty() {
            out.push_str(&self.spans.render(self.clock_hz_or_default()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inca_isa::TaskSlot;

    fn slot(i: u8) -> TaskSlot {
        TaskSlot::new(i).unwrap()
    }

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::EngineMeta {
                cycle: 0,
                strategy: "virtual-instruction".into(),
                clock_hz: 300_000_000,
            },
            TraceEvent::JobReleased { cycle: 0, slot: slot(3) },
            TraceEvent::JobStarted { cycle: 0, slot: slot(3) },
            TraceEvent::Preempted {
                victim: slot(3),
                winner: slot(1),
                layer: 1,
                request: 300,
                t1: 40,
                t2: 160,
            },
            TraceEvent::Resumed { slot: slot(3), restore_start: 900, t4: 80 },
            TraceEvent::JobFinished {
                cycle: 1500,
                slot: slot(3),
                busy_cycles: 1200,
                preemptions: 1,
            },
            TraceEvent::DeadlineMet { cycle: 1500, slot: slot(3), deadline: 2000, slack: 500 },
        ]
    }

    #[test]
    fn analyzer_folds_all_subanalyses() {
        let mut a = Analyzer::new();
        a.consume(&sample_events());
        assert_eq!(a.strategy.as_deref(), Some("virtual-instruction"));
        assert_eq!(a.clock_hz, Some(300_000_000));
        assert_eq!(a.preemption.preemptions, 1);
        assert_eq!(a.attribution.slots[3].finished, 1);
        assert_eq!((a.deadlines.met, a.deadlines.missed), (1, 0));
    }

    #[test]
    fn metrics_export_uses_analyze_prefix() {
        let mut a = Analyzer::new();
        a.consume(&sample_events());
        let m = a.metrics();
        assert_eq!(m.counter("analyze.preemptions"), 1);
        assert_eq!(m.counter("analyze.deadlines.met"), 1);
        assert_eq!(m.counter("analyze.slot3.finished"), 1);
        assert_eq!(m.histogram("analyze.preempt.latency_cycles").unwrap().max(), 200);
        assert_eq!(m.histogram("analyze.deadline.slack_cycles").unwrap().max(), 500);
        // Idle slots export nothing.
        assert_eq!(m.counter("analyze.slot0.finished"), 0);
        assert!(m.histogram("analyze.slot0.response_cycles").is_none());
    }

    #[test]
    fn render_mentions_the_load_bearing_numbers() {
        let mut a = Analyzer::new();
        a.consume(&sample_events());
        let text = a.render();
        assert!(text.contains("virtual-instruction"));
        assert!(text.contains("1 met, 0 missed"));
        assert!(text.contains("preemptions: 1 (1 resumed)"));
        assert!(text.contains("slot3"));
    }
}
