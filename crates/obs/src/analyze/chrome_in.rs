//! Best-effort import of the [`crate::chrome::ChromeTrace`] export back
//! into [`TraceEvent`] streams, so `inca-analyze` can consume trace JSON
//! files as well as live rings.
//!
//! The export is lossy by design (it is a visualisation format), so the
//! importer reconstructs what the analysis layer needs and documents what
//! it cannot:
//!
//! * timestamps are µs; cycles are recovered through the `clock_hz`
//!   carried by the `"engine meta"` instant (300 MHz assumed when a trace
//!   predates that event);
//! * zero-duration `t1`/`t2`/`t4` slices are omitted by the exporter —
//!   the phases re-import as 0, which is exact;
//! * a `t4 = 0` resume (layer-by-layer) emits no slice at all, so the
//!   victim's pause ends only at its next `job` segment;
//! * resumed job segments re-import as repeated `JobStarted`s, which the
//!   attribution layer deduplicates.

use std::collections::BTreeMap;

use inca_isa::{Opcode, TaskSlot, TASK_SLOTS};

use crate::chrome::{APP_TID, RUNTIME_TID};
use crate::json::Value;
use crate::span::SpanStage;
use crate::trace::TraceEvent;

/// Clock assumed for traces without an `"engine meta"` instant (the
/// paper's 300 MHz).
pub const DEFAULT_CLOCK_HZ: u64 = 300_000_000;

/// One process (accelerator/agent) reconstructed from a trace file.
#[derive(Debug, Clone)]
pub struct ImportedProcess {
    /// Chrome pid.
    pub pid: u64,
    /// Process name (from the `process_name` metadata record).
    pub name: String,
    /// Clock used for µs→cycle conversion.
    pub clock_hz: u64,
    /// Reconstructed events, sorted by cycle with a stable variant order.
    pub events: Vec<TraceEvent>,
}

/// The known static rejection reasons (the live event carries a
/// `&'static str`, so imported reasons must map onto one of these).
const REJECT_REASONS: [&str; 4] = ["queue-full", "admission", "drop-oldest", "degrade-skip"];

fn arg_u64(args: Option<&Value>, key: &str) -> Option<u64> {
    args?.get(key)?.as_u64()
}

fn arg_str<'v>(args: Option<&'v Value>, key: &str) -> Option<&'v str> {
    args?.get(key)?.as_str()
}

fn slot_of(tid: u64) -> Option<TaskSlot> {
    u8::try_from(tid)
        .ok()
        .filter(|&t| (t as usize) < TASK_SLOTS)
        .and_then(|t| TaskSlot::new(t).ok())
}

/// Sort rank so same-cycle events replay in a causally sensible order
/// (releases before starts, preemptions before resumes before finishes).
fn rank(ev: &TraceEvent) -> u8 {
    match ev {
        TraceEvent::EngineMeta { .. } => 0,
        TraceEvent::JobReleased { .. } => 1,
        TraceEvent::SchedAdmitted { .. } | TraceEvent::SchedRejected { .. } => 2,
        TraceEvent::SchedBound { .. } => 3,
        TraceEvent::JobStarted { .. } => 4,
        TraceEvent::InstrRetired { .. }
        | TraceEvent::ViMaterialized { .. }
        | TraceEvent::SavePatched { .. } => 5,
        TraceEvent::Preempted { .. } => 6,
        TraceEvent::Resumed { .. } => 7,
        TraceEvent::JobFinished { .. } => 8,
        TraceEvent::DeadlineMet { .. } | TraceEvent::DeadlineMissed { .. } => 9,
        TraceEvent::MessagePublished { .. } | TraceEvent::TimerFired { .. } => 10,
        TraceEvent::Milestone { .. } => 11,
        TraceEvent::Span { .. } => 12,
    }
}

struct ProcBuilder {
    name: String,
    events: Vec<TraceEvent>,
    // Per-slot `t1`/`t2` slices keyed by their **end** cycle, so the
    // preempted job segment ending at the same cycle can claim them.
    t1_by_end: [BTreeMap<u64, u64>; TASK_SLOTS],
    t2_by_end: [BTreeMap<u64, u64>; TASK_SLOTS],
    // Preempted job segments: (slot, end, start, winner, layer).
    preempt_segments: Vec<(TaskSlot, u64, u64, u64, u64)>,
}

impl ProcBuilder {
    fn new() -> Self {
        Self {
            name: String::new(),
            events: Vec::new(),
            t1_by_end: Default::default(),
            t2_by_end: Default::default(),
            preempt_segments: Vec::new(),
        }
    }
}

/// Parses a Chrome trace-event JSON document produced by
/// [`crate::chrome::ChromeTrace`] back into per-process event streams.
///
/// # Errors
///
/// Returns a message when the text is not valid JSON or has no
/// `traceEvents` array. Individual malformed records are skipped, not
/// fatal — the import is best-effort.
pub fn import(text: &str) -> Result<Vec<ImportedProcess>, String> {
    let doc = Value::parse(text).map_err(|e| e.to_string())?;
    let records = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .ok_or_else(|| "no traceEvents array".to_owned())?;

    // Pass 1: discover each pid's clock from its "engine meta" instant.
    let mut clocks: BTreeMap<u64, u64> = BTreeMap::new();
    for rec in records {
        if rec.get("name").and_then(Value::as_str) == Some("engine meta") {
            if let (Some(pid), Some(hz)) =
                (rec.get("pid").and_then(Value::as_u64), arg_u64(rec.get("args"), "clock_hz"))
            {
                clocks.insert(pid, hz);
            }
        }
    }

    // Pass 2: reconstruct events per pid.
    let mut procs: BTreeMap<u64, ProcBuilder> = BTreeMap::new();
    for rec in records {
        let Some(pid) = rec.get("pid").and_then(Value::as_u64) else { continue };
        let clock_hz = clocks.get(&pid).copied().unwrap_or(DEFAULT_CLOCK_HZ);
        let cycles_per_us = clock_hz as f64 / 1e6;
        let cycle_at = |us: f64| (us * cycles_per_us).round() as u64;
        let p = procs.entry(pid).or_insert_with(ProcBuilder::new);

        let name = rec.get("name").and_then(Value::as_str).unwrap_or("");
        let ph = rec.get("ph").and_then(Value::as_str).unwrap_or("");
        let tid = rec.get("tid").and_then(Value::as_u64).unwrap_or(u64::MAX);
        let args = rec.get("args");
        match ph {
            "M" if name == "process_name" => {
                if let Some(n) = arg_str(args, "name") {
                    p.name = n.to_owned();
                }
            }
            "M" => {}
            "X" if name.starts_with("span:") => {
                // Span slices carry every field as raw u64 args, so the
                // round trip is exact regardless of the µs timebase.
                let Some(stage) = arg_u64(args, "stage").and_then(SpanStage::from_code) else {
                    continue;
                };
                let (Some(id), Some(request), Some(start), Some(end)) = (
                    arg_u64(args, "id"),
                    arg_u64(args, "request"),
                    arg_u64(args, "start_cy"),
                    arg_u64(args, "end_cy"),
                ) else {
                    continue;
                };
                p.events.push(TraceEvent::Span {
                    id,
                    parent: arg_u64(args, "parent").unwrap_or(0),
                    request,
                    stage,
                    start,
                    end,
                    core: arg_u64(args, "core").map_or(crate::span::NO_CORE, |c| c as u32),
                    detail: arg_u64(args, "detail").unwrap_or(0),
                });
            }
            "X" => {
                let Some(ts) = rec.get("ts").and_then(Value::as_f64) else { continue };
                let Some(dur) = rec.get("dur").and_then(Value::as_f64) else { continue };
                let start = cycle_at(ts);
                let cycles = cycle_at(ts + dur).saturating_sub(start);
                let Some(slot) = slot_of(tid) else { continue };
                match name {
                    "job" => {
                        p.events.push(TraceEvent::JobStarted { cycle: start, slot });
                        if let Some(busy) = arg_u64(args, "busy_cycles") {
                            p.events.push(TraceEvent::JobFinished {
                                cycle: start + cycles,
                                slot,
                                busy_cycles: busy,
                                preemptions: arg_u64(args, "preemptions").unwrap_or(0) as u32,
                            });
                        } else if let Some(winner) = arg_u64(args, "by_slot") {
                            // A segment cut short by a preemption; pair
                            // with t1/t2 slices once all slices are read.
                            let layer = arg_u64(args, "layer").unwrap_or(0);
                            p.preempt_segments.push((slot, start + cycles, start, winner, layer));
                        }
                        // No args at all: a job still open at trace end —
                        // the start alone is all the exporter knew.
                    }
                    "t1" => {
                        p.t1_by_end[slot.index()].insert(start + cycles, cycles);
                    }
                    "t2" => {
                        p.t2_by_end[slot.index()].insert(start + cycles, cycles);
                    }
                    "t4" => {
                        p.events.push(TraceEvent::Resumed {
                            slot,
                            restore_start: start,
                            t4: cycles,
                        });
                    }
                    vi if vi.starts_with("vi:") => {
                        if let Some(op) = Opcode::ALL.into_iter().find(|o| o.mnemonic() == &vi[3..])
                        {
                            p.events.push(TraceEvent::ViMaterialized {
                                start,
                                cycles,
                                slot,
                                op,
                                layer: arg_u64(args, "layer").unwrap_or(0) as u16,
                            });
                        }
                    }
                    instr => {
                        if let Some(op) = Opcode::ALL.into_iter().find(|o| o.mnemonic() == instr) {
                            p.events.push(TraceEvent::InstrRetired {
                                start,
                                cycles,
                                slot,
                                op,
                                layer: arg_u64(args, "layer").unwrap_or(0) as u16,
                            });
                        }
                    }
                }
            }
            "i" => {
                let Some(ts) = rec.get("ts").and_then(Value::as_f64) else { continue };
                let cycle = cycle_at(ts);
                if tid == u64::from(RUNTIME_TID) {
                    if name == "engine meta" {
                        p.events.push(TraceEvent::EngineMeta {
                            cycle,
                            strategy: arg_str(args, "strategy").unwrap_or("unknown").to_owned(),
                            clock_hz: arg_u64(args, "clock_hz").unwrap_or(clock_hz),
                        });
                    } else if let Some(task) = name.strip_prefix("admit t") {
                        if let Ok(task) = task.parse() {
                            p.events.push(TraceEvent::SchedAdmitted {
                                cycle,
                                task,
                                job: arg_u64(args, "job").unwrap_or(0),
                                queue_depth: arg_u64(args, "queue_depth").unwrap_or(0) as u32,
                            });
                        }
                    } else if let Some(task) = name.strip_prefix("reject t") {
                        if let Ok(task) = task.parse() {
                            let reason = arg_str(args, "reason").unwrap_or("");
                            let reason = REJECT_REASONS
                                .into_iter()
                                .find(|r| *r == reason)
                                .unwrap_or("imported");
                            p.events.push(TraceEvent::SchedRejected { cycle, task, reason });
                        }
                    } else if let Some(topic) = name.strip_prefix("pub ") {
                        p.events.push(TraceEvent::MessagePublished {
                            cycle,
                            topic: topic.to_owned(),
                            subscribers: arg_u64(args, "subscribers").unwrap_or(0) as u32,
                        });
                    } else if let Some(timer) = name.strip_prefix("timer ") {
                        if let Ok(timer) = timer.parse() {
                            p.events.push(TraceEvent::TimerFired {
                                cycle,
                                node: arg_u64(args, "node").unwrap_or(0) as u32,
                                timer,
                            });
                        }
                    }
                } else if tid == u64::from(APP_TID) {
                    p.events.push(TraceEvent::Milestone {
                        cycle,
                        label: name.to_owned(),
                        detail: arg_str(args, "detail").unwrap_or("").to_owned(),
                    });
                } else if let Some(slot) = slot_of(tid) {
                    match name {
                        "released" => p.events.push(TraceEvent::JobReleased { cycle, slot }),
                        "deadline met" => p.events.push(TraceEvent::DeadlineMet {
                            cycle,
                            slot,
                            deadline: arg_u64(args, "deadline").unwrap_or(cycle),
                            slack: arg_u64(args, "slack_cycles").unwrap_or(0),
                        }),
                        "deadline MISS" => p.events.push(TraceEvent::DeadlineMissed {
                            cycle,
                            slot,
                            deadline: arg_u64(args, "deadline").unwrap_or(cycle),
                            overrun: arg_u64(args, "overrun_cycles").unwrap_or(0),
                        }),
                        "save patched" => p.events.push(TraceEvent::SavePatched {
                            cycle,
                            slot,
                            save_id: arg_u64(args, "save_id").unwrap_or(0) as u32,
                            elided: arg_str(args, "elided") == Some("true"),
                        }),
                        bind => {
                            if let Some(task) = bind.strip_prefix("bind t") {
                                if let Ok(task) = task.parse() {
                                    p.events.push(TraceEvent::SchedBound {
                                        cycle,
                                        task,
                                        job: arg_u64(args, "job").unwrap_or(0),
                                        slot,
                                        preempting: arg_str(args, "preempting") == Some("true"),
                                        reload_cycles: arg_u64(args, "reload_cycles").unwrap_or(0),
                                    });
                                }
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    }

    // Pass 3: pair preempted job segments with their t1/t2 slices.
    let mut out = Vec::new();
    for (pid, mut p) in procs {
        for (victim, end, start, winner, layer) in std::mem::take(&mut p.preempt_segments) {
            p.events.push(TraceEvent::JobStarted { cycle: start, slot: victim });
            let i = victim.index();
            // The backup slice ends where the segment ends; the finish-op
            // slice ends where the backup began. Zero-length phases were
            // never exported, so absence means exactly zero.
            let t2 = p.t2_by_end[i].remove(&end).unwrap_or(0);
            let t1 = p.t1_by_end[i].remove(&(end - t2)).unwrap_or(0);
            if let Some(winner) = slot_of(winner) {
                p.events.push(TraceEvent::Preempted {
                    victim,
                    winner,
                    layer: layer as u16,
                    request: end - t1 - t2,
                    t1,
                    t2,
                });
            }
        }
        p.events.sort_by_key(|ev| (ev.cycle(), rank(ev)));
        let clock_hz = clocks.get(&pid).copied().unwrap_or(DEFAULT_CLOCK_HZ);
        out.push(ImportedProcess { pid, name: p.name, clock_hz, events: p.events });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chrome::ChromeTrace;

    fn slot(i: u8) -> TaskSlot {
        TaskSlot::new(i).unwrap()
    }

    /// Exports a preemption scenario and re-imports it; every
    /// analysis-relevant event must survive the round trip.
    #[test]
    fn export_import_round_trip_recovers_preemption_phases() {
        let events = vec![
            TraceEvent::EngineMeta {
                cycle: 0,
                strategy: "virtual-instruction".into(),
                clock_hz: 300_000_000,
            },
            TraceEvent::JobReleased { cycle: 0, slot: slot(3) },
            TraceEvent::JobStarted { cycle: 0, slot: slot(3) },
            TraceEvent::JobReleased { cycle: 100, slot: slot(1) },
            TraceEvent::Preempted {
                victim: slot(3),
                winner: slot(1),
                layer: 2,
                request: 100,
                t1: 40,
                t2: 60,
            },
            TraceEvent::JobStarted { cycle: 200, slot: slot(1) },
            TraceEvent::JobFinished { cycle: 500, slot: slot(1), busy_cycles: 300, preemptions: 0 },
            TraceEvent::DeadlineMet { cycle: 500, slot: slot(1), deadline: 700, slack: 200 },
            TraceEvent::Resumed { slot: slot(3), restore_start: 500, t4: 25 },
            TraceEvent::JobFinished { cycle: 900, slot: slot(3), busy_cycles: 715, preemptions: 1 },
        ];
        let mut b = ChromeTrace::new(300.0);
        b.add_process(7, "accel", &events);
        let imported = import(&b.finish()).expect("import");
        assert_eq!(imported.len(), 1);
        let p = &imported[0];
        assert_eq!((p.pid, p.name.as_str(), p.clock_hz), (7, "accel", 300_000_000));

        assert!(p.events.contains(&TraceEvent::Preempted {
            victim: slot(3),
            winner: slot(1),
            layer: 2,
            request: 100,
            t1: 40,
            t2: 60,
        }));
        assert!(p.events.contains(&TraceEvent::Resumed {
            slot: slot(3),
            restore_start: 500,
            t4: 25,
        }));
        assert!(p.events.contains(&TraceEvent::JobFinished {
            cycle: 900,
            slot: slot(3),
            busy_cycles: 715,
            preemptions: 1,
        }));
        assert!(p.events.contains(&TraceEvent::DeadlineMet {
            cycle: 500,
            slot: slot(1),
            deadline: 700,
            slack: 200,
        }));
        assert!(p.events.contains(&TraceEvent::JobReleased { cycle: 0, slot: slot(3) }));
        // Events are sorted by cycle.
        let cycles: Vec<u64> = p.events.iter().map(TraceEvent::cycle).collect();
        assert!(cycles.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn scheduler_and_runtime_instants_round_trip() {
        let events = vec![
            TraceEvent::EngineMeta { cycle: 0, strategy: "cpu-like".into(), clock_hz: 1_000_000 },
            TraceEvent::SchedAdmitted { cycle: 10, task: 2, job: 5, queue_depth: 1 },
            TraceEvent::SchedRejected { cycle: 11, task: 2, reason: "queue-full" },
            TraceEvent::SchedBound {
                cycle: 20,
                task: 2,
                job: 5,
                slot: slot(2),
                preempting: true,
                reload_cycles: 123,
            },
            TraceEvent::MessagePublished { cycle: 30, topic: "scan".into(), subscribers: 2 },
            TraceEvent::TimerFired { cycle: 40, node: 1, timer: 9 },
            TraceEvent::Milestone { cycle: 50, label: "pr match".into(), detail: "x".into() },
        ];
        let mut b = ChromeTrace::new(1.0);
        b.add_process(0, "agent0", &events);
        let imported = import(&b.finish()).expect("import");
        let got = &imported[0].events;
        for want in &events {
            assert!(got.contains(want), "missing {want:?} in {got:?}");
        }
    }

    #[test]
    fn missing_engine_meta_falls_back_to_default_clock() {
        let events = vec![TraceEvent::JobReleased { cycle: 600, slot: slot(0) }];
        let mut b = ChromeTrace::new(300.0);
        b.add_process(0, "a", &events);
        let imported = import(&b.finish()).expect("import");
        assert_eq!(imported[0].clock_hz, DEFAULT_CLOCK_HZ);
        assert_eq!(imported[0].events, events);
    }

    #[test]
    fn zero_length_phases_reimport_as_zero() {
        // Layer-by-layer: t1 > 0 but t2 = 0, and the t4 = 0 resume emits
        // no slice — the preemption must still re-import with t2 = 0.
        let events = vec![
            TraceEvent::EngineMeta {
                cycle: 0,
                strategy: "layer-by-layer".into(),
                clock_hz: 1_000_000,
            },
            TraceEvent::JobStarted { cycle: 0, slot: slot(3) },
            TraceEvent::Preempted {
                victim: slot(3),
                winner: slot(1),
                layer: 0,
                request: 50,
                t1: 30,
                t2: 0,
            },
            TraceEvent::Resumed { slot: slot(3), restore_start: 200, t4: 0 },
            TraceEvent::JobFinished { cycle: 400, slot: slot(3), busy_cycles: 380, preemptions: 1 },
        ];
        let mut b = ChromeTrace::new(1.0);
        b.add_process(0, "a", &events);
        let imported = import(&b.finish()).expect("import");
        let got = &imported[0].events;
        assert!(got.contains(&TraceEvent::Preempted {
            victim: slot(3),
            winner: slot(1),
            layer: 0,
            request: 50,
            t1: 30,
            t2: 0,
        }));
        // The zero-cost resume is a documented loss.
        assert!(!got.iter().any(|e| matches!(e, TraceEvent::Resumed { .. })));
    }

    #[test]
    fn garbage_input_is_an_error() {
        assert!(import("not json").is_err());
        assert!(import("{}").is_err(), "no traceEvents");
    }
}
