//! Preemption-latency accounting: per-phase distributions (the paper's
//! `t1` finish-current-op, `t2` backup, `t4` restore), worst cases, and
//! measured-vs-model drift against the analytical cost model.

use inca_isa::TASK_SLOTS;

use crate::metrics::Histogram;
use crate::trace::TraceEvent;

/// Aggregated preemption statistics over one trace.
#[derive(Debug, Clone, Default)]
pub struct PreemptionStats {
    /// Preemptions observed ([`TraceEvent::Preempted`]).
    pub preemptions: u64,
    /// Resumes observed ([`TraceEvent::Resumed`]).
    pub resumes: u64,
    /// Distribution of `t1` (finish current operation).
    pub t1: Histogram,
    /// Distribution of `t2` (backup).
    pub t2: Histogram,
    /// Distribution of `t4` (restore).
    pub t4: Histogram,
    /// Distribution of the interrupt response latency `t1 + t2`.
    pub latency: Histogram,
    /// Distribution of the scheduling cost `t2 + t4`. `t4` is only
    /// attributable to a preemption once the victim resumes, so the cost
    /// histogram pairs each [`TraceEvent::Resumed`] with the most recent
    /// unresumed preemption of that slot.
    pub cost: Histogram,
    /// Preemptions suffered per victim slot.
    pub per_victim: [u64; TASK_SLOTS],
    /// Worst response latency `t1 + t2` imposed per winner slot.
    pub worst_latency_per_winner: [u64; TASK_SLOTS],
    /// Pending `t2` per slot, for cost pairing.
    pending_t2: [Option<u64>; TASK_SLOTS],
}

impl PreemptionStats {
    /// Folds one event into the stats.
    pub fn push(&mut self, ev: &TraceEvent) {
        match ev {
            TraceEvent::Preempted { victim, winner, t1, t2, .. } => {
                self.preemptions += 1;
                self.per_victim[victim.index()] += 1;
                self.t1.observe(*t1);
                self.t2.observe(*t2);
                self.latency.observe(t1 + t2);
                let w = &mut self.worst_latency_per_winner[winner.index()];
                *w = (*w).max(t1 + t2);
                self.pending_t2[victim.index()] = Some(*t2);
            }
            TraceEvent::Resumed { slot, t4, .. } => {
                self.resumes += 1;
                self.t4.observe(*t4);
                let t2 = self.pending_t2[slot.index()].take().unwrap_or(0);
                self.cost.observe(t2 + t4);
            }
            _ => {}
        }
    }

    /// Worst observed response latency `t1 + t2`.
    #[must_use]
    pub fn worst_latency(&self) -> u64 {
        self.latency.max()
    }

    /// Checks the measured `t2` distribution against the analytical
    /// model's worst case for the strategy that produced the trace.
    #[must_use]
    pub fn t2_drift(&self, model: &T2Model) -> DriftReport {
        let measured_worst = self.t2.max();
        let within_bound = measured_worst <= model.worst_t2;
        // Exact models (CPU-like: full on-chip dump; layer-by-layer /
        // non-preemptive: zero) must also be hit from below.
        let exact_ok = !model.exact
            || self.t2.count() == 0
            || (self.t2.min() == model.worst_t2 && measured_worst == model.worst_t2);
        DriftReport {
            samples: self.t2.count(),
            measured_worst_t2: measured_worst,
            model_worst_t2: model.worst_t2,
            ratio: if model.worst_t2 == 0 {
                if measured_worst == 0 {
                    1.0
                } else {
                    f64::INFINITY
                }
            } else {
                measured_worst as f64 / model.worst_t2 as f64
            },
            within: within_bound && exact_ok,
        }
    }
}

/// The analytical `t2` prediction for one (strategy, program) pair —
/// computed by the caller (e.g. `inca-analyze` via
/// `inca_accel::analysis::t2_worst`), since `inca-obs` sits below the
/// accelerator crate in the dependency graph.
#[derive(Debug, Clone)]
pub struct T2Model {
    /// Strategy display name, for reporting.
    pub strategy: String,
    /// Worst-case backup cost the model allows.
    pub worst_t2: u64,
    /// Whether the model is exact (every measured `t2` must equal
    /// `worst_t2`) rather than an upper bound.
    pub exact: bool,
}

/// Measured-vs-model comparison for the backup phase.
#[derive(Debug, Clone)]
pub struct DriftReport {
    /// Number of measured `t2` samples.
    pub samples: u64,
    /// Worst measured backup cost.
    pub measured_worst_t2: u64,
    /// The model's worst case.
    pub model_worst_t2: u64,
    /// `measured_worst / model_worst` (1.0 when both are zero).
    pub ratio: f64,
    /// Whether the measurements satisfy the model (bound respected;
    /// exact models matched exactly).
    pub within: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use inca_isa::TaskSlot;

    fn slot(i: u8) -> TaskSlot {
        TaskSlot::new(i).unwrap()
    }

    fn preempt(victim: u8, winner: u8, t1: u64, t2: u64) -> TraceEvent {
        TraceEvent::Preempted {
            victim: slot(victim),
            winner: slot(winner),
            layer: 0,
            request: 100,
            t1,
            t2,
        }
    }

    #[test]
    fn phases_accumulate_and_cost_pairs_resume() {
        let mut p = PreemptionStats::default();
        p.push(&preempt(3, 1, 40, 60));
        p.push(&TraceEvent::Resumed { slot: slot(3), restore_start: 500, t4: 25 });
        p.push(&preempt(2, 0, 10, 0));
        assert_eq!(p.preemptions, 2);
        assert_eq!(p.resumes, 1);
        assert_eq!(p.per_victim, [0, 0, 1, 1]);
        assert_eq!(p.latency.max(), 100);
        assert_eq!(p.worst_latency_per_winner[1], 100);
        assert_eq!(p.worst_latency_per_winner[0], 10);
        // cost = t2 + t4 for the resumed preemption only.
        assert_eq!(p.cost.count(), 1);
        assert_eq!(p.cost.max(), 85);
    }

    #[test]
    fn drift_bounds_and_exactness() {
        let mut p = PreemptionStats::default();
        p.push(&preempt(3, 1, 5, 200));
        p.push(&preempt(3, 1, 7, 200));

        let bound = T2Model { strategy: "virtual-instruction".into(), worst_t2: 250, exact: false };
        let d = p.t2_drift(&bound);
        assert!(d.within);
        assert!((d.ratio - 0.8).abs() < 1e-12);

        let exact = T2Model { strategy: "cpu-like".into(), worst_t2: 200, exact: true };
        assert!(p.t2_drift(&exact).within);

        let tight = T2Model { strategy: "virtual-instruction".into(), worst_t2: 150, exact: false };
        assert!(!p.t2_drift(&tight).within, "bound violated");

        let exact_off = T2Model { strategy: "cpu-like".into(), worst_t2: 210, exact: true };
        assert!(!p.t2_drift(&exact_off).within, "exact model must match exactly");
    }

    #[test]
    fn zero_model_zero_measured_is_unit_ratio() {
        let mut p = PreemptionStats::default();
        p.push(&preempt(3, 1, 12, 0));
        let m = T2Model { strategy: "layer-by-layer".into(), worst_t2: 0, exact: true };
        let d = p.t2_drift(&m);
        assert!(d.within);
        assert!((d.ratio - 1.0).abs() < 1e-12);
    }
}
