//! A minimal, dependency-free JSON writer.
//!
//! The workspace's `serde` is an offline marker stub (see `vendor/serde`),
//! so every exporter in this crate serialises by hand. The writer is
//! deliberately tiny: objects and arrays are built in order, numbers use
//! Rust's default (shortest round-trip) formatting, and the output for a
//! given input is byte-stable — which the trace-determinism tests rely on.

use std::fmt::Write as _;

/// Escapes `s` for embedding in a JSON string literal (without the
/// surrounding quotes).
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number. JSON has no NaN/Inf; they are
/// serialised as `null`.
#[must_use]
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// An in-order JSON object builder.
#[derive(Debug, Default)]
pub struct Obj {
    buf: String,
}

impl Obj {
    /// Starts an empty object.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn sep(&mut self) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
    }

    /// Adds a string field.
    #[must_use]
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.sep();
        let _ = write!(self.buf, "\"{}\":\"{}\"", escape(key), escape(value));
        self
    }

    /// Adds an unsigned integer field.
    #[must_use]
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        self.sep();
        let _ = write!(self.buf, "\"{}\":{}", escape(key), value);
        self
    }

    /// Adds a float field.
    #[must_use]
    pub fn f64(mut self, key: &str, value: f64) -> Self {
        self.sep();
        let _ = write!(self.buf, "\"{}\":{}", escape(key), number(value));
        self
    }

    /// Adds a field whose value is already-serialised JSON.
    #[must_use]
    pub fn raw(mut self, key: &str, value: &str) -> Self {
        self.sep();
        let _ = write!(self.buf, "\"{}\":{}", escape(key), value);
        self
    }

    /// Closes the object and returns its JSON text.
    #[must_use]
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Joins already-serialised JSON values into an array literal.
#[must_use]
pub fn array(items: &[String]) -> String {
    format!("[{}]", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn object_builder_orders_fields() {
        let s = Obj::new().str("a", "x").u64("b", 2).f64("c", 1.5).raw("d", "[1]").finish();
        assert_eq!(s, "{\"a\":\"x\",\"b\":2,\"c\":1.5,\"d\":[1]}");
    }

    #[test]
    fn non_finite_floats_are_null() {
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(2.0), "2");
    }
}
