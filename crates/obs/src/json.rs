//! A minimal, dependency-free JSON writer **and reader**.
//!
//! The workspace's `serde` is an offline marker stub (see `vendor/serde`),
//! so every exporter in this crate serialises by hand. The writer is
//! deliberately tiny: objects and arrays are built in order, numbers use
//! Rust's default (shortest round-trip) formatting, and the output for a
//! given input is byte-stable — which the trace-determinism tests rely on.
//!
//! The reader ([`Value::parse`]) exists for the analysis layer: the bench
//! gate re-reads committed `BENCH_*.json` metrics snapshots and
//! `inca-analyze` imports exported Chrome trace files. Numbers keep their
//! raw lexeme so `u64` counters survive the round trip exactly (no detour
//! through `f64`).

use std::fmt::Write as _;

/// Escapes `s` for embedding in a JSON string literal (without the
/// surrounding quotes).
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number. JSON has no NaN/Inf; they are
/// serialised as `null`.
#[must_use]
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// An in-order JSON object builder.
#[derive(Debug, Default)]
pub struct Obj {
    buf: String,
}

impl Obj {
    /// Starts an empty object.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn sep(&mut self) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
    }

    /// Adds a string field.
    #[must_use]
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.sep();
        let _ = write!(self.buf, "\"{}\":\"{}\"", escape(key), escape(value));
        self
    }

    /// Adds an unsigned integer field.
    #[must_use]
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        self.sep();
        let _ = write!(self.buf, "\"{}\":{}", escape(key), value);
        self
    }

    /// Adds a float field.
    #[must_use]
    pub fn f64(mut self, key: &str, value: f64) -> Self {
        self.sep();
        let _ = write!(self.buf, "\"{}\":{}", escape(key), number(value));
        self
    }

    /// Adds a field whose value is already-serialised JSON.
    #[must_use]
    pub fn raw(mut self, key: &str, value: &str) -> Self {
        self.sep();
        let _ = write!(self.buf, "\"{}\":{}", escape(key), value);
        self
    }

    /// Closes the object and returns its JSON text.
    #[must_use]
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Joins already-serialised JSON values into an array literal.
#[must_use]
pub fn array(items: &[String]) -> String {
    format!("[{}]", items.join(","))
}

/// A parse error: byte offset into the input plus a static description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// A parsed JSON value. Object fields keep document order; numbers keep
/// their raw lexeme (see [`Value::as_u64`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, stored as its raw lexeme.
    Num(String),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, fields in document order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Parses one JSON document (trailing whitespace allowed, nothing
    /// else).
    pub fn parse(text: &str) -> Result<Value, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data after document"));
        }
        Ok(v)
    }

    /// Object field by key (first match; `None` for non-objects).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's fields, if this is an object.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// The array's elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// String content, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value as `f64` (lossy above 2^53), if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// Exact unsigned integer value, if this is a number with an integer
    /// lexeme in range — counters written by [`Obj::u64`] round-trip
    /// losslessly through this.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// Exact `u128` value (histogram sums), if the lexeme fits.
    #[must_use]
    pub fn as_u128(&self) -> Option<u128> {
        match self {
            Value::Num(s) => s.parse().ok(),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { offset: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ASCII \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\' && b >= 0x20) {
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.peek() == Some(b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let code =
                                        0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                    char::from_u32(code)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let lexeme = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number lexeme is ASCII")
            .to_owned();
        Ok(Value::Num(lexeme))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn object_builder_orders_fields() {
        let s = Obj::new().str("a", "x").u64("b", 2).f64("c", 1.5).raw("d", "[1]").finish();
        assert_eq!(s, "{\"a\":\"x\",\"b\":2,\"c\":1.5,\"d\":[1]}");
    }

    #[test]
    fn non_finite_floats_are_null() {
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(2.0), "2");
    }

    #[test]
    fn parser_round_trips_writer_output() {
        let doc = Obj::new()
            .str("name", "a\"b\\c\nd")
            .u64("big", u64::MAX)
            .f64("half", 0.5)
            .raw("arr", &array(&["1".into(), "null".into(), "true".into()]))
            .raw("nested", &Obj::new().str("k", "v").finish())
            .finish();
        let v = Value::parse(&doc).expect("parse");
        assert_eq!(v.get("name").unwrap().as_str(), Some("a\"b\\c\nd"));
        assert_eq!(v.get("big").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(v.get("half").unwrap().as_f64(), Some(0.5));
        let arr = v.get("arr").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1], Value::Null);
        assert_eq!(arr[2], Value::Bool(true));
        assert_eq!(v.get("nested").unwrap().get("k").unwrap().as_str(), Some("v"));
    }

    #[test]
    fn parser_handles_whitespace_and_numbers() {
        let v = Value::parse(" { \"a\" : [ -1.5e3 , 0 ] } ").expect("parse");
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(-1500.0));
        assert_eq!(arr[1].as_u64(), Some(0));
    }

    #[test]
    fn parser_decodes_unicode_escapes() {
        let v = Value::parse("\"\\u0041\\ud83d\\ude00\\t\"").expect("parse");
        assert_eq!(v.as_str(), Some("A\u{1F600}\t"));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "{\"a\" 1}", "12 34", "\"unterminated", "nul"] {
            assert!(Value::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn u64_counters_survive_exactly() {
        // 2^53 + 1 is not representable as f64; the raw lexeme keeps it.
        let n = (1u64 << 53) + 1;
        let v = Value::parse(&n.to_string()).expect("parse");
        assert_eq!(v.as_u64(), Some(n));
        assert_ne!(v.as_f64().unwrap() as u64, n);
    }
}
