//! Request-scoped causal spans (DESIGN.md §5.7).
//!
//! A [`SpanStage`] names one edge of a served request's lifecycle —
//! admission, batch wait, scheduler queue, program reload, execution,
//! preempted-out, per-layer — and a `TraceEvent::Span` records one closed
//! interval of that stage in **virtual cycles**. Span ids are derived
//! deterministically from `(request, stage, seq)` with FNV-1a, so the
//! same run produces the same ids on any host, at any thread count, and
//! a re-imported Chrome trace reconstructs the exact same graph.
//!
//! Time domains: cycles are the only authoritative domain (they make
//! traces byte-identical). The optional wall-clock domain on [`Span`]
//! exists for host-side correlation (e.g. [`crate::hostprof`]) and is
//! **never** populated on the deterministic paths.

use crate::trace::TraceEvent;

/// The lifecycle stage a span measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanStage {
    /// Root span: gateway admission to response (one per request).
    Request,
    /// Waiting in a gateway batch buffer for the flush (batched lanes).
    BatchWait,
    /// Waiting in the admission scheduler's queue and for a slot.
    Queue,
    /// Program-reload DMA charged when the job bound to a cold slot.
    Reload,
    /// Holding the datapath and retiring instructions.
    Exec,
    /// Preempted out: backup (`t2`), parked, and restore (`t4`).
    Preempted,
    /// One layer's instructions retiring (child of an [`SpanStage::Exec`]).
    Layer,
}

impl SpanStage {
    /// All stages, in id-code order.
    pub const ALL: [SpanStage; 7] = [
        SpanStage::Request,
        SpanStage::BatchWait,
        SpanStage::Queue,
        SpanStage::Reload,
        SpanStage::Exec,
        SpanStage::Preempted,
        SpanStage::Layer,
    ];

    /// Stable numeric code (feeds [`span_id`] and the Chrome export args).
    #[must_use]
    pub fn code(self) -> u64 {
        match self {
            SpanStage::Request => 0,
            SpanStage::BatchWait => 1,
            SpanStage::Queue => 2,
            SpanStage::Reload => 3,
            SpanStage::Exec => 4,
            SpanStage::Preempted => 5,
            SpanStage::Layer => 6,
        }
    }

    /// Inverse of [`SpanStage::code`].
    #[must_use]
    pub fn from_code(code: u64) -> Option<Self> {
        SpanStage::ALL.get(code as usize).copied()
    }

    /// Stable lowercase name (becomes `span:<name>` in Chrome exports).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            SpanStage::Request => "request",
            SpanStage::BatchWait => "batch-wait",
            SpanStage::Queue => "queue",
            SpanStage::Reload => "reload",
            SpanStage::Exec => "exec",
            SpanStage::Preempted => "preempted",
            SpanStage::Layer => "layer",
        }
    }

    /// Inverse of [`SpanStage::as_str`].
    #[must_use]
    pub fn parse_name(s: &str) -> Option<Self> {
        SpanStage::ALL.iter().copied().find(|st| st.as_str() == s)
    }
}

impl std::fmt::Display for SpanStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Deterministic span id: FNV-1a over `(request, stage code, seq)`,
/// forced odd so `0` stays free as the "no parent" sentinel. `seq`
/// disambiguates repeated intervals of one stage within one request
/// (e.g. the second exec segment after a preemption has `seq == 1`).
#[must_use]
pub fn span_id(request: u64, stage: SpanStage, seq: u32) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in request.to_le_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(PRIME);
    }
    h = (h ^ stage.code()).wrapping_mul(PRIME);
    for b in seq.to_le_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(PRIME);
    }
    h | 1
}

/// The root span id of a request (parent of every other stage).
#[must_use]
pub fn request_span_id(request: u64) -> u64 {
    span_id(request, SpanStage::Request, 0)
}

/// Sentinel for the `core` field when the emitter is not bound to a
/// serving core (single-engine runs).
pub const NO_CORE: u32 = u32::MAX;

/// A closed span, as reconstructed by the analysis layer. The cycle
/// domain (`start`/`end`) is authoritative; `wall_ns` is an optional
/// host-time correlation filled only by non-deterministic tooling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Deterministic id (see [`span_id`]).
    pub id: u64,
    /// Parent span id, `0` for roots.
    pub parent: u64,
    /// The request this span belongs to (`RequestId::raw`).
    pub request: u64,
    /// Stage measured.
    pub stage: SpanStage,
    /// Start cycle (inclusive).
    pub start: u64,
    /// End cycle (exclusive).
    pub end: u64,
    /// Serving core index, or [`NO_CORE`].
    pub core: u32,
    /// Stage-specific detail word (see DESIGN.md §5.7: lane/tenant for
    /// request roots, layer id for layer spans, winner slot for
    /// preemptions, batch size for batch waits; otherwise 0).
    pub detail: u64,
    /// Optional wall-clock interval (ns since an arbitrary epoch).
    /// `None` on every deterministic path.
    pub wall_ns: Option<(u64, u64)>,
}

impl Span {
    /// Length in cycles.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// Builds the analysis-side span from a trace event, if it is one.
    #[must_use]
    pub fn from_event(ev: &TraceEvent) -> Option<Self> {
        match *ev {
            TraceEvent::Span { id, parent, request, stage, start, end, core, detail } => {
                Some(Span { id, parent, request, stage, start, end, core, detail, wall_ns: None })
            }
            _ => None,
        }
    }

    /// The trace event carrying this span (drops `wall_ns`, which never
    /// enters deterministic streams).
    #[must_use]
    pub fn to_event(&self) -> TraceEvent {
        TraceEvent::Span {
            id: self.id,
            parent: self.parent,
            request: self.request,
            stage: self.stage,
            start: self.start,
            end: self.end,
            core: self.core,
            detail: self.detail,
        }
    }
}

/// Packs `(lane, tenant)` into a request root span's detail word.
#[must_use]
pub fn request_detail(lane_hard: bool, tenant: u32) -> u64 {
    (u64::from(lane_hard) << 32) | u64::from(tenant)
}

/// Unpacks a request root span's detail word into `(lane_hard, tenant)`.
#[must_use]
pub fn split_request_detail(detail: u64) -> (bool, u32) {
    ((detail >> 32) & 1 == 1, detail as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for st in SpanStage::ALL {
            assert_eq!(SpanStage::from_code(st.code()), Some(st));
            assert_eq!(SpanStage::parse_name(st.as_str()), Some(st));
        }
        assert_eq!(SpanStage::from_code(7), None);
    }

    #[test]
    fn ids_are_deterministic_distinct_and_never_zero() {
        let a = span_id(3, SpanStage::Exec, 0);
        assert_eq!(a, span_id(3, SpanStage::Exec, 0));
        assert_ne!(a, span_id(3, SpanStage::Exec, 1));
        assert_ne!(a, span_id(3, SpanStage::Queue, 0));
        assert_ne!(a, span_id(4, SpanStage::Exec, 0));
        assert_ne!(a, 0);
        assert_eq!(request_span_id(3), span_id(3, SpanStage::Request, 0));
    }

    #[test]
    fn detail_packing_round_trips() {
        assert_eq!(split_request_detail(request_detail(true, 7)), (true, 7));
        assert_eq!(split_request_detail(request_detail(false, u32::MAX)), (false, u32::MAX));
    }

    #[test]
    fn event_round_trip() {
        let s = Span {
            id: span_id(9, SpanStage::Reload, 0),
            parent: request_span_id(9),
            request: 9,
            stage: SpanStage::Reload,
            start: 100,
            end: 250,
            core: 1,
            detail: 0,
            wall_ns: None,
        };
        assert_eq!(Span::from_event(&s.to_event()), Some(s));
        assert_eq!(s.cycles(), 150);
    }
}
