//! Analyzer-vs-runtime consistency (ISSUE: trace analysis engine):
//! the deadline accounting `inca_obs::analyze::Analyzer` reconstructs
//! from a trace must agree **byte-for-byte** with what the runtime
//! itself reports — [`Runtime::report`]'s deadline records and the
//! `runtime.deadlines.*` / `runtime.deadline.*` metrics — under every
//! interrupt strategy, and must survive a Chrome-JSON export/import
//! round trip unchanged.
//!
//! The runs are *drained* (a bounded submitter, run long past the last
//! finish): outstanding deadline jobs have no trace event, so equality
//! is only defined when every deadline has resolved.

use inca::accel::{AccelConfig, Engine, InterruptStrategy, JobRecord, TimingBackend};
use inca::compiler::Compiler;
use inca::isa::TaskSlot;
use inca::model::{zoo, Shape3};
use inca::obs::{analyze, Analyzer, ChromeTrace, Histogram, Tracer};
use inca::runtime::{JobHandle, Node, NodeContext, Runtime};

#[derive(Clone)]
struct Msg;

/// Submits `remaining` accelerator jobs with a fixed relative deadline,
/// re-arming faster than one job's service time so the queue backs up
/// and the later deadlines miss.
struct BoundedSubmitter {
    slot: TaskSlot,
    deadline: u64,
    period: u64,
    remaining: u32,
}

impl Node<Msg> for BoundedSubmitter {
    fn name(&self) -> &str {
        "bounded-submitter"
    }
    fn on_timer(&mut self, ctx: &mut NodeContext<'_, Msg>, _t: u32) {
        if self.remaining == 0 {
            return;
        }
        self.remaining -= 1;
        let deadline = ctx.now() + self.deadline;
        ctx.submit_accel_with_deadline(self.slot, deadline);
        if self.remaining > 0 {
            ctx.schedule_timer(self.period, 0);
        }
    }
    fn on_accel_done(
        &mut self,
        _ctx: &mut NodeContext<'_, Msg>,
        _job: JobHandle,
        _rec: &JobRecord,
    ) {
    }
}

/// One drained mixed met/missed run under `strategy`; returns the trace
/// ring snapshot, the runtime's metrics, and the report-derived
/// (met, missed) split.
fn drained_run(
    strategy: InterruptStrategy,
) -> (Vec<inca::obs::TraceEvent>, inca::obs::Metrics, u64, u64) {
    let cfg = AccelConfig::paper_big();
    let compiler = Compiler::new(cfg.arch);
    let net = zoo::tiny(Shape3::new(3, 32, 32)).unwrap();
    let program = if matches!(strategy, InterruptStrategy::VirtualInstruction) {
        compiler.compile_vi(&net).unwrap()
    } else {
        compiler.compile(&net).unwrap()
    };
    let slot = TaskSlot::new(1).unwrap();

    // Solo span of one job under this strategy's program, to shape a
    // deadline that early jobs meet and backlogged jobs miss.
    let span = {
        let mut e = Engine::new(cfg, strategy, TimingBackend::new());
        e.load(slot, program.clone()).unwrap();
        e.request_at(0, slot).unwrap();
        e.run().unwrap().final_cycle
    };

    let mut rt: Runtime<Msg, TimingBackend> = Runtime::new(cfg, strategy, TimingBackend::new());
    let (tracer, buf) = Tracer::ring(1 << 16);
    rt.set_tracer(tracer);
    rt.engine_mut().load(slot, program).unwrap();
    let node = rt.add_node(BoundedSubmitter {
        slot,
        deadline: span + span / 4,
        period: span / 2,
        remaining: 10,
    });
    rt.schedule_timer(node, 0, 0);
    // 10 jobs at ~span each: 40x span is far past the last finish.
    rt.run_until(span * 40).unwrap();

    let report = rt.report();
    assert!(
        report.deadlines.iter().all(|d| d.finish.is_some()),
        "{strategy}: run must drain — outstanding deadlines have no trace event"
    );
    let met = report.deadlines.iter().filter(|d| d.met()).count() as u64;
    let missed = report.deadline_misses() as u64;
    assert!(met > 0, "{strategy}: scenario must meet some deadlines");
    assert!(missed > 0, "{strategy}: scenario must miss some deadlines");
    (buf.snapshot(), rt.metrics(), met, missed)
}

/// Asserts the analyzer's deadline accounting equals the runtime's,
/// byte for byte: counts against both the report split and the metrics
/// counters, slack/overrun against the runtime's histograms.
fn assert_consistent(
    strategy: InterruptStrategy,
    a: &Analyzer,
    m: &inca::obs::Metrics,
    met: u64,
    missed: u64,
) {
    assert_eq!(a.deadlines.met, met, "{strategy}: met vs report");
    assert_eq!(a.deadlines.missed, missed, "{strategy}: missed vs report");
    assert_eq!(a.deadlines.met, m.counter("runtime.deadlines.met"), "{strategy}: met counter");
    assert_eq!(
        a.deadlines.missed,
        m.counter("runtime.deadlines.missed"),
        "{strategy}: missed counter"
    );
    let rt_slack = m.histogram("runtime.deadline.slack_cycles").cloned().unwrap_or_default();
    let rt_overrun = m.histogram("runtime.deadline.overrun_cycles").cloned().unwrap_or_default();
    assert_eq!(a.deadlines.slack, rt_slack, "{strategy}: slack histogram");
    assert_eq!(a.deadlines.overrun, rt_overrun, "{strategy}: overrun histogram");

    // The analyzer's exported metrics mirror the same numbers under the
    // `analyze.` prefix.
    let am = a.metrics();
    assert_eq!(am.counter("analyze.deadlines.met"), met, "{strategy}: analyze met counter");
    assert_eq!(
        am.counter("analyze.deadlines.missed"),
        missed,
        "{strategy}: analyze missed counter"
    );
    assert_eq!(
        am.histogram("analyze.deadline.slack_cycles").cloned().unwrap_or_default(),
        rt_slack,
        "{strategy}: exported slack histogram"
    );
}

#[test]
fn analyzer_deadline_accounting_matches_runtime_under_every_strategy() {
    for strategy in [
        InterruptStrategy::NonPreemptive,
        InterruptStrategy::CpuLike,
        InterruptStrategy::LayerByLayer,
        InterruptStrategy::VirtualInstruction,
    ] {
        let (events, m, met, missed) = drained_run(strategy);
        let mut a = Analyzer::new();
        a.consume(&events);
        assert_consistent(strategy, &a, &m, met, missed);
    }
}

#[test]
fn deadline_accounting_survives_chrome_round_trip() {
    for strategy in [
        InterruptStrategy::NonPreemptive,
        InterruptStrategy::CpuLike,
        InterruptStrategy::LayerByLayer,
        InterruptStrategy::VirtualInstruction,
    ] {
        let (events, m, met, missed) = drained_run(strategy);
        let cfg = AccelConfig::paper_big();
        let mut chrome = ChromeTrace::new(cfg.clock_hz as f64 / 1e6).include_instructions(true);
        chrome.add_process(0, "runtime", &events);
        let procs = analyze::import(&chrome.finish()).unwrap();
        assert_eq!(procs.len(), 1, "{strategy}: one exported process");

        let mut a = Analyzer::new();
        a.consume(&procs[0].events);
        // Deadline instants carry their slack/overrun as integer args,
        // so the round trip must reproduce the accounting exactly.
        assert_consistent(strategy, &a, &m, met, missed);
        assert_eq!(
            a.clock_hz_or_default(),
            cfg.clock_hz,
            "{strategy}: EngineMeta clock must survive the round trip"
        );
    }
}

#[test]
fn empty_trace_yields_empty_accounting() {
    let mut a = Analyzer::new();
    a.consume(&[]);
    assert_eq!(a.deadlines.met, 0);
    assert_eq!(a.deadlines.missed, 0);
    assert_eq!(a.deadlines.slack, Histogram::default());
    assert_eq!(a.metrics().counter("analyze.deadlines.met"), 0);
}
