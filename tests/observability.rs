//! Workspace-level observability tests (ISSUE: trace determinism):
//! the same program + seed must yield **byte-identical** traces and
//! metrics regardless of the functional backend's thread count, across
//! repeated runs under every interrupt strategy, and the metrics
//! deadline counters must agree with the runtime's deadline records.

use inca::accel::{
    AccelConfig, DdrImage, Engine, FuncBackend, InterruptStrategy, JobRecord, TimingBackend,
};
use inca::compiler::Compiler;
use inca::isa::TaskSlot;
use inca::model::{zoo, Shape3};
use inca::obs::{ChromeTrace, MetricsSnapshot, TraceEvent, Tracer};
use inca::runtime::{JobHandle, Node, NodeContext, Runtime};

/// Runs a two-slot preemption scenario on the functional backend with
/// `threads` worker threads, returning the Chrome trace JSON and the
/// metrics snapshot JSON.
fn traced_func_run(threads: usize) -> (String, String) {
    let cfg = AccelConfig::paper_small();
    let compiler = Compiler::new(cfg.arch);
    let lo_prog = compiler.compile_vi(&zoo::tiny(Shape3::new(3, 48, 48)).unwrap()).unwrap();
    let hi_prog = compiler.compile_vi(&zoo::tiny(Shape3::new(3, 24, 24)).unwrap()).unwrap();
    let (hi, lo) = (TaskSlot::new(1).unwrap(), TaskSlot::new(3).unwrap());

    // Interrupt at 2/5 of the victim's solo span — empirically mid-layer
    // with live buffer state, so the preemption pays real t2/t4 phases
    // (a boundary interrupt would save and restore nothing).
    let span = {
        let mut e = Engine::new(cfg, InterruptStrategy::VirtualInstruction, TimingBackend::new());
        e.load(lo, lo_prog.clone()).unwrap();
        e.request_at(0, lo).unwrap();
        e.run().unwrap().final_cycle
    };

    let mut backend = FuncBackend::with_threads(threads);
    backend.install_image(lo, DdrImage::for_program(&lo_prog, 11));
    backend.install_image(hi, DdrImage::for_program(&hi_prog, 22));
    let mut engine = Engine::new(cfg, InterruptStrategy::VirtualInstruction, backend);
    let (tracer, buf) = Tracer::ring(1 << 18);
    engine.set_tracer(tracer);
    engine.load(lo, lo_prog).unwrap();
    engine.load(hi, hi_prog).unwrap();
    engine.request_at(0, lo).unwrap();
    engine.request_at(span * 2 / 5, hi).unwrap();
    let report = engine.run().unwrap();
    assert!(!report.interrupts.is_empty(), "scenario must actually preempt");
    let ev = report.interrupts[0];
    assert!(ev.t2 > 0 && ev.t4 > 0, "preemption must pay real backup/restore phases");

    let mut chrome = ChromeTrace::new(cfg.clock_hz as f64 / 1e6).include_instructions(true);
    chrome.add_process(0, "accel", &buf.snapshot());
    (chrome.finish(), MetricsSnapshot::new("func_run", engine.metrics()).to_json())
}

#[test]
fn traces_are_byte_identical_across_thread_counts() {
    let (trace_1t, metrics_1t) = traced_func_run(1);
    let (trace_4t, metrics_4t) = traced_func_run(4);
    assert_eq!(trace_1t, trace_4t, "thread count must not leak into the trace");
    assert_eq!(metrics_1t, metrics_4t, "thread count must not leak into metrics");
}

#[test]
fn traces_are_byte_identical_across_repeat_runs_per_strategy() {
    let cfg = AccelConfig::paper_small();
    let compiler = Compiler::new(cfg.arch);
    let lo_net = zoo::tiny(Shape3::new(3, 48, 48)).unwrap();
    let hi_net = zoo::tiny(Shape3::new(3, 24, 24)).unwrap();
    let lo_vi = compiler.compile_vi(&lo_net).unwrap();
    let lo_orig = compiler.compile(&lo_net).unwrap();
    let hi_vi = compiler.compile_vi(&hi_net).unwrap();
    let hi_orig = compiler.compile(&hi_net).unwrap();

    for strategy in [
        InterruptStrategy::NonPreemptive,
        InterruptStrategy::CpuLike,
        InterruptStrategy::LayerByLayer,
        InterruptStrategy::VirtualInstruction,
    ] {
        let run = || {
            let vi = matches!(strategy, InterruptStrategy::VirtualInstruction);
            let (hi, lo) = (TaskSlot::new(1).unwrap(), TaskSlot::new(3).unwrap());
            let mut e = Engine::new(cfg, strategy, TimingBackend::new());
            let (tracer, buf) = Tracer::ring(1 << 18);
            e.set_tracer(tracer);
            e.load(hi, if vi { hi_vi.clone() } else { hi_orig.clone() }).unwrap();
            e.load(lo, if vi { lo_vi.clone() } else { lo_orig.clone() }).unwrap();
            e.request_at(0, lo).unwrap();
            e.request_at(5_000, hi).unwrap();
            e.run().unwrap();
            let mut chrome = ChromeTrace::new(cfg.clock_hz as f64 / 1e6).include_instructions(true);
            chrome.add_process(0, "accel", &buf.snapshot());
            (chrome.finish(), MetricsSnapshot::new("run", e.metrics()).to_json())
        };
        assert_eq!(run(), run(), "{strategy}: repeat runs must be byte-identical");
    }
}

#[test]
fn preemption_phases_appear_as_nested_slices() {
    let (trace, _) = traced_func_run(2);
    // The VI strategy's preemption phases must be visible as their own
    // slices, and the scheduler events as instants.
    for needle in [
        "\"name\":\"job\"",
        "\"name\":\"t1\"",
        "\"name\":\"t2\"",
        "\"name\":\"t4\"",
        "\"ph\":\"i\"",
    ] {
        assert!(trace.contains(needle), "trace must contain {needle}");
    }
}

#[derive(Clone)]
struct Msg;

/// Submits one accelerator job per timer tick with a fixed relative
/// deadline — tight enough that some jobs miss once the queue backs up.
struct Submitter {
    slot: TaskSlot,
    deadline: u64,
}

impl Node<Msg> for Submitter {
    fn name(&self) -> &str {
        "submitter"
    }
    fn on_timer(&mut self, ctx: &mut NodeContext<'_, Msg>, _t: u32) {
        let deadline = ctx.now() + self.deadline;
        ctx.submit_accel_with_deadline(self.slot, deadline);
        ctx.schedule_timer(self.deadline / 2, 0);
    }
    fn on_accel_done(
        &mut self,
        _ctx: &mut NodeContext<'_, Msg>,
        _job: JobHandle,
        _rec: &JobRecord,
    ) {
    }
}

#[test]
fn deadline_counters_match_deadline_records() {
    let cfg = AccelConfig::paper_big();
    let compiler = Compiler::new(cfg.arch);
    let program = compiler.compile_vi(&zoo::tiny(Shape3::new(3, 32, 32)).unwrap()).unwrap();
    let slot = TaskSlot::new(1).unwrap();

    // Solo span of one job, to pick a deadline that forces misses: the
    // submitter re-arms at deadline/2, so jobs arrive twice as fast as a
    // deadline-length service slot can drain them.
    let span = {
        let mut e = Engine::new(cfg, InterruptStrategy::VirtualInstruction, TimingBackend::new());
        e.load(slot, program.clone()).unwrap();
        e.request_at(0, slot).unwrap();
        e.run().unwrap().final_cycle
    };

    let mut rt: Runtime<Msg, TimingBackend> =
        Runtime::new(cfg, InterruptStrategy::VirtualInstruction, TimingBackend::new());
    let (tracer, buf) = Tracer::ring(1 << 16);
    rt.set_tracer(tracer);
    rt.engine_mut().load(slot, program).unwrap();
    let node = rt.add_node(Submitter { slot, deadline: span + span / 4 });
    rt.schedule_timer(node, 0, 0);
    rt.run_until(span * 12).unwrap();

    let report = rt.report();
    let m = rt.metrics();
    let met = report.deadlines.iter().filter(|d| d.met()).count() as u64;
    assert!(report.deadline_misses() > 0, "scenario must produce misses");
    assert!(met > 0, "scenario must also meet some deadlines");
    assert_eq!(m.counter("runtime.deadlines.missed"), report.deadline_misses() as u64);
    assert_eq!(m.counter("runtime.deadlines.met"), met);

    // Every deadline resolution visible in the report is also a trace
    // event; the traced met/missed split agrees with both.
    let events = buf.snapshot();
    let traced_met =
        events.iter().filter(|e| matches!(e, TraceEvent::DeadlineMet { .. })).count() as u64;
    let traced_missed =
        events.iter().filter(|e| matches!(e, TraceEvent::DeadlineMissed { .. })).count() as u64;
    assert_eq!(traced_met, met);
    let resolved_misses =
        report.deadlines.iter().filter(|d| d.finish.is_some() && !d.met()).count() as u64;
    assert_eq!(traced_missed, resolved_misses);
}
