//! The event-engine acceptance bar: a discrete-event advance
//! ([`AdvanceMode::EventDriven`], the default) must be **byte-identical**
//! to the legacy cycle-box stepping loop ([`AdvanceMode::Stepping`]) on
//! every observable surface — DDR output bytes, merged trace streams
//! (including request-tagged span trees), metrics snapshots, per-core
//! reports and mid-run clock/metrics snapshots — across all four
//! interrupt strategies, 1–8 core pools, the serving gateway, and the
//! bench crate's canonical spans scenario.
//!
//! The only permitted difference is *work*: on pools with idle cores the
//! event engine must actually skip them ([`AdvanceStats::skips`] > 0).

use std::sync::Arc;

use inca::accel::{
    AccelConfig, AdvanceMode, AdvanceStats, CoreId, CorePool, DdrImage, Engine, FuncBackend,
    InterruptStrategy, Report,
};
use inca::compiler::Compiler;
use inca::isa::{Program, TaskSlot};
use inca::model::{zoo, Shape3};
use inca::obs::{Metrics, MetricsSnapshot, TraceEvent, Tracer};
use inca::serve::{Gateway, PlacePolicy, SchedPolicy, TenantSpec};
use inca_bench::{serve_spans_scenario_with_mode, SpansScenario};

const STRATEGIES: [InterruptStrategy; 4] = [
    InterruptStrategy::NonPreemptive,
    InterruptStrategy::CpuLike,
    InterruptStrategy::LayerByLayer,
    InterruptStrategy::VirtualInstruction,
];

fn cfg() -> AccelConfig {
    AccelConfig::paper_small()
}

fn compile(strategy: InterruptStrategy, net: &inca::model::Network) -> Arc<Program> {
    let compiler = Compiler::new(cfg().arch);
    Arc::new(match strategy {
        InterruptStrategy::VirtualInstruction => compiler.compile_vi(net).unwrap(),
        _ => compiler.compile(net).unwrap(),
    })
}

/// Deterministic low-magnitude input so tiled and golden sums agree
/// exactly (same idiom as the accel transparency suite).
fn image_with_input(program: &Program, seed: u64) -> DdrImage {
    let mut img = DdrImage::for_program(program, seed);
    let first = &program.layers[0];
    let n = first.in_shape.bytes();
    let data: Vec<u8> = (0..n).map(|i| ((i * 7 + 3) % 15) as u8).collect();
    img.write(first.input_addr, &data);
    img
}

/// Every layer's DDR output bytes for one program.
type LayerOutputs = Vec<Vec<i8>>;

fn all_outputs(program: &Program, image: &DdrImage) -> LayerOutputs {
    program.layers.iter().map(|m| image.read_output(m)).collect()
}

fn makespan(strategy: InterruptStrategy, program: &Arc<Program>) -> u64 {
    let slot = TaskSlot::new(3).unwrap();
    let mut e = Engine::new(cfg(), strategy, inca::accel::TimingBackend::new());
    e.load(slot, Arc::clone(program)).unwrap();
    e.request_at(0, slot).unwrap();
    e.run().unwrap().completed_jobs[0].finish
}

/// Everything a pool run can observably produce, snapshotted mid-run and
/// at the end. Two runs are "the same run" iff these compare equal.
#[derive(Debug, PartialEq)]
struct PoolObservables {
    /// At each intermediate barrier: (per-core clock, per-core metrics JSON).
    mid: Vec<(Vec<u64>, Vec<String>)>,
    reports: Vec<Report>,
    metrics_json: Vec<String>,
    trace: Vec<TraceEvent>,
    /// Per active core: DDR outputs of the lo and hi programs.
    outputs: Vec<(LayerOutputs, LayerOutputs)>,
}

/// The pool-direct scenario: `cores` functional cores share one tracer;
/// every *even* core runs a tagged lo job preempted mid-flight by a
/// tagged hi job (so span trees and interrupts land in the stream), odd
/// cores stay idle the whole run. Advanced through two mid-run barriers,
/// then to quiescence.
fn pool_run(
    strategy: InterruptStrategy,
    cores: usize,
    mode: AdvanceMode,
) -> (PoolObservables, AdvanceStats) {
    let lo_prog = compile(strategy, &zoo::tiny(Shape3::new(3, 24, 24)).unwrap());
    let hi_prog = compile(strategy, &zoo::tiny(Shape3::new(3, 16, 16)).unwrap());
    let span = makespan(strategy, &lo_prog);
    let (lo, hi) = (TaskSlot::new(3).unwrap(), TaskSlot::new(1).unwrap());

    let (tracer, buf) = Tracer::ring(1 << 16);
    let engines: Vec<Engine<FuncBackend>> = (0..cores)
        .map(|c| {
            let mut e = Engine::new(cfg(), strategy, FuncBackend::new());
            e.set_span_core(c as u32);
            e.set_tracer(tracer.clone());
            e.load(lo, Arc::clone(&lo_prog)).unwrap();
            e.load(hi, Arc::clone(&hi_prog)).unwrap();
            e.backend_mut().install_image(lo, image_with_input(&lo_prog, 1_000 + c as u64));
            e.backend_mut().install_image(hi, image_with_input(&hi_prog, 9_000 + c as u64));
            e
        })
        .collect();
    let mut pool = CorePool::from_engines(engines);
    pool.set_advance_mode(mode);

    let active: Vec<usize> = (0..cores).step_by(2).collect();
    for (i, &c) in active.iter().enumerate() {
        let e = pool.core_mut(CoreId(c));
        // Stagger the work so equal-wake ties AND distinct wakes both occur.
        e.request_job_tagged(c as u64 * 100, lo, 0, 0, Some(1 + i as u64)).unwrap();
        e.request_job_tagged(span / 3 + c as u64 * 100, hi, 0, 0, Some(100 + i as u64)).unwrap();
    }

    let mut mid = Vec::new();
    for barrier in [span / 4, span / 2] {
        pool.run_until(barrier).unwrap();
        let nows: Vec<u64> = pool.core_ids().map(|c| pool.core(c).now()).collect();
        let json: Vec<String> = pool
            .core_ids()
            .map(|c| MetricsSnapshot::new(format!("core{}", c.0), pool.core(c).metrics()).to_json())
            .collect();
        mid.push((nows, json));
    }
    pool.run_until(u64::MAX).unwrap();

    let outputs = active
        .iter()
        .map(|&c| {
            let b = pool.core(CoreId(c)).backend();
            (
                all_outputs(&lo_prog, b.image(lo).unwrap()),
                all_outputs(&hi_prog, b.image(hi).unwrap()),
            )
        })
        .collect();
    let metrics_json = pool
        .core_ids()
        .map(|c| MetricsSnapshot::new(format!("core{}", c.0), pool.core(c).metrics()).to_json())
        .collect();
    let obs =
        PoolObservables { mid, reports: pool.reports(), metrics_json, trace: buf.drain(), outputs };
    (obs, pool.advance_stats())
}

#[test]
fn pool_runs_are_byte_identical_across_modes() {
    for strategy in STRATEGIES {
        for cores in [1usize, 2, 4, 8] {
            let (ev, ev_stats) = pool_run(strategy, cores, AdvanceMode::EventDriven);
            let (st, st_stats) = pool_run(strategy, cores, AdvanceMode::Stepping);
            assert_eq!(ev, st, "{strategy}/{cores}c: event-driven and stepping runs diverge");
            assert!(!ev.trace.is_empty(), "{strategy}/{cores}c: scenario emits trace events");
            let completed: usize = ev.reports.iter().map(|r| r.completed_jobs.len()).sum();
            assert_eq!(completed, cores.div_ceil(2) * 2, "{strategy}/{cores}c: all jobs done");
            if cores >= 2 {
                assert!(
                    ev_stats.skips > 0,
                    "{strategy}/{cores}c: idle cores must be skipped, got {ev_stats:?}"
                );
                assert!(
                    ev_stats.skips > st_stats.skips,
                    "{strategy}/{cores}c: event mode must out-skip stepping"
                );
            }
            // Stepping visits every registered core at every barrier.
            assert_eq!(st_stats.wakes + st_stats.skips, st_stats.barriers * cores as u64);
        }
    }
}

/// Everything a gateway run can observably produce.
#[derive(Debug, PartialEq)]
struct GatewayObservables {
    responses: Vec<inca::serve::Response>,
    metrics_json: String,
    trace: Vec<TraceEvent>,
    reports: Vec<Report>,
    outputs: Vec<LayerOutputs>,
}

/// A copy of `m` without the mode-dependent `event.*` work-telemetry
/// counters. The gateway now publishes its advance stats in metrics-v1
/// (wakes/skips measure *simulator work*, which differs across modes by
/// design), so the byte-identical comparison covers everything else and
/// the event counters get their own explicit assertions.
fn strip_event(m: &Metrics) -> Metrics {
    let mut out = Metrics::new();
    for (k, v) in m.counters().filter(|(k, _)| !k.starts_with("event.")) {
        out.inc(k, v);
    }
    for (k, v) in m.gauges() {
        out.set_gauge(k, v);
    }
    for (k, h) in m.histograms() {
        out.insert_histogram(k, h.clone());
    }
    out
}

/// The serving scenario from the serve differential suite — admission,
/// batching, placement, slot-virtualizing schedulers, hard-lane
/// preemption — run under an explicit advance mode.
fn gateway_run(
    strategy: InterruptStrategy,
    cores: usize,
    mode: AdvanceMode,
) -> (GatewayObservables, AdvanceStats) {
    let lo_prog = compile(strategy, &zoo::tiny(Shape3::new(3, 32, 32)).unwrap());
    let mid_prog = compile(strategy, &zoo::tiny(Shape3::new(3, 24, 24)).unwrap());
    let hi_prog = compile(strategy, &zoo::tiny(Shape3::new(3, 16, 16)).unwrap());

    // (name, program, weight, hard, seed)
    let plan: [(&str, &Arc<Program>, u8, bool, u64); 5] = [
        ("bg0", &lo_prog, 3, false, 1_007),
        ("bg1", &lo_prog, 3, false, 2_007),
        ("mid0", &mid_prog, 2, false, 3_007),
        ("mid1", &mid_prog, 2, false, 4_007),
        ("estop", &hi_prog, 0, true, 5_007),
    ];

    let pool = CorePool::new(cores, cfg(), strategy, FuncBackend::new);
    let mut gw = Gateway::new(pool, SchedPolicy::FixedPriority, PlacePolicy::LeastLoaded);
    gw.set_advance_mode(mode);
    gw.set_batch_window(5_000);
    let (tracer, buf) = Tracer::ring(1 << 16);
    gw.set_tracer(tracer);
    let tenants: Vec<_> = plan
        .iter()
        .map(|(name, program, weight, hard, _)| {
            let mut spec = TenantSpec::new(*name, Arc::clone(program)).weight(*weight);
            if *hard {
                spec = spec.hard(2_000_000_000);
            }
            gw.register(spec)
        })
        .collect();
    for core in 0..cores {
        for (t, (_, program, _, _, seed)) in tenants.iter().zip(plan.iter()) {
            gw.pool_mut()
                .core_mut(CoreId(core))
                .backend_mut()
                .install_ctx_image(t.ctx(), image_with_input(program, *seed));
        }
    }

    let span = makespan(strategy, &lo_prog);
    gw.submit(0, tenants[0]).unwrap();
    gw.submit(0, tenants[1]).unwrap();
    gw.run_until(span / 4).unwrap();
    gw.submit(span / 4, tenants[2]).unwrap();
    gw.submit(span / 4, tenants[3]).unwrap();
    gw.run_until(span / 2).unwrap();
    gw.submit(span / 2, tenants[4]).unwrap();
    gw.run_to_idle(u64::MAX).unwrap();

    let responses = gw.drain_responses();
    assert_eq!(responses.len(), 5, "{strategy}/{cores}c/{mode}: all requests answered");
    let outputs = responses
        .iter()
        .map(|r| {
            let t = r.tenant;
            let program = Arc::clone(&gw.spec(t).program);
            let core = r.core.expect("executed requests carry their core");
            all_outputs(&program, gw.pool().core(core).backend().ctx_image(t.ctx()).unwrap())
        })
        .collect();
    let obs = GatewayObservables {
        responses,
        metrics_json: MetricsSnapshot::new("gw", strip_event(&gw.metrics())).to_json(),
        trace: buf.drain(),
        reports: gw.pool().reports(),
        outputs,
    };
    let stats = gw.advance_stats();
    // The stripped counters get their own check: metrics-v1 must publish
    // the advance stats verbatim under `event.*`.
    let full = gw.metrics();
    let counter = |key: &str| {
        full.counters().find(|&(k, _)| k == key).map(|(_, v)| v).expect("event counter published")
    };
    assert_eq!(counter("event.barriers"), stats.barriers);
    assert_eq!(counter("event.wakes"), stats.wakes);
    assert_eq!(counter("event.skips"), stats.skips);
    (obs, stats)
}

#[test]
fn gateway_runs_are_byte_identical_across_modes() {
    for strategy in STRATEGIES {
        let mut ev_by_cores = Vec::new();
        for cores in [2usize, 4] {
            let (ev, ev_stats) = gateway_run(strategy, cores, AdvanceMode::EventDriven);
            let (st, st_stats) = gateway_run(strategy, cores, AdvanceMode::Stepping);
            assert_eq!(ev, st, "{strategy}/{cores}c: served runs diverge across modes");
            assert!(!ev.trace.is_empty(), "{strategy}/{cores}c: gateway emits trace events");
            assert!(
                ev_stats.skips > 0,
                "{strategy}/{cores}c: an event-driven gateway must skip quiescent cores, \
                 got {ev_stats:?}"
            );
            // The serving wake-heap accounts for every core at every
            // barrier: visited (armed and non-quiescent) or skipped.
            assert_eq!(
                ev_stats.wakes + ev_stats.skips,
                ev_stats.barriers * cores as u64,
                "{strategy}/{cores}c: wake-heap barrier accounting is exact"
            );
            assert_eq!(st_stats.skips, 0, "{strategy}/{cores}c: stepping never skips");
            ev_by_cores.push(ev_stats);
        }
        // Wake-heap barriers are O(armed), not O(cores): growing the pool
        // with capacity the workload does not arm improves skips instead
        // of costing full-pool scans.
        let (ev2, ev4) = (ev_by_cores[0], ev_by_cores[1]);
        assert!(
            ev4.skips > ev2.skips,
            "{strategy}: idle capacity must convert to skips (2c {ev2:?} vs 4c {ev4:?})"
        );
    }
}

#[test]
fn bench_canonical_spans_scenario_is_mode_invariant() {
    for strategy in STRATEGIES {
        let ev: SpansScenario =
            serve_spans_scenario_with_mode(strategy, 1, None, AdvanceMode::EventDriven);
        let st: SpansScenario =
            serve_spans_scenario_with_mode(strategy, 1, None, AdvanceMode::Stepping);
        assert_eq!(ev.events, st.events, "{strategy}: canonical span streams diverge");
        assert_eq!(ev.dropped, st.dropped, "{strategy}");
        assert_eq!(ev.responses, st.responses, "{strategy}");
        assert!(ev.responses > 0 && !ev.events.is_empty(), "{strategy}: scenario is non-trivial");
    }
}
