//! Workspace-level end-to-end tests: model zoo → compiler → binary
//! round-trip → engine → functional verification, crossing every crate
//! through the public facade.

use inca::accel::{
    analysis, AccelConfig, DdrImage, Engine, FuncBackend, InterruptStrategy, TimingBackend,
};
use inca::compiler::Compiler;
use inca::isa::{Program, TaskSlot};
use inca::model::{zoo, Shape3};

#[test]
fn full_pipeline_binary_round_trip() {
    let cfg = AccelConfig::paper_big();
    let compiler = Compiler::new(cfg.arch);
    let net = zoo::resnet18(Shape3::new(3, 64, 64)).unwrap();
    let vi = compiler.compile_vi(&net).unwrap();

    // instruction.bin round trip preserves the stream.
    let bin = vi.to_bin();
    let decoded =
        Program::from_bin(vi.name.clone(), &bin, vi.layers.clone(), vi.memory.clone()).unwrap();
    assert_eq!(decoded.instrs, vi.instrs);
    // Interrupt-point structure is recoverable from the stream itself
    // (empty points excluded — they carry no virtual instructions).
    let nonempty = vi.interrupt_points.iter().filter(|p| !p.vir_range().is_empty()).count();
    assert_eq!(decoded.interrupt_points.len(), nonempty);
}

#[test]
fn container_round_trips_compiled_zoo_programs() {
    use inca::isa::container;
    let cfg = AccelConfig::paper_big();
    let compiler = Compiler::new(cfg.arch);
    for net in [
        zoo::tiny(Shape3::new(3, 32, 32)).unwrap(),
        zoo::mobilenet_v1(Shape3::new(3, 64, 64)).unwrap(),
        zoo::resnet18(Shape3::new(3, 64, 64)).unwrap(),
    ] {
        let vi = compiler.compile_vi(&net).unwrap();
        let bytes = container::encode_container(&vi);
        let back = container::decode_container(&bytes).unwrap();
        assert_eq!(back.instrs, vi.instrs, "{}", net.name);
        assert_eq!(back.layers, vi.layers, "{}", net.name);
        assert_eq!(back.memory, vi.memory, "{}", net.name);
        back.validate().unwrap();
    }
}

#[test]
fn decoded_binary_runs_identically() {
    let cfg = AccelConfig::paper_small();
    let compiler = Compiler::new(cfg.arch);
    let net = zoo::tiny(Shape3::new(3, 32, 32)).unwrap();
    let vi = compiler.compile_vi(&net).unwrap();
    let decoded =
        Program::from_bin(vi.name.clone(), &vi.to_bin(), vi.layers.clone(), vi.memory.clone())
            .unwrap();

    let run = |program: Program| {
        let slot = TaskSlot::LOWEST;
        let mut backend = FuncBackend::new();
        backend.install_image(slot, DdrImage::for_program(&program, 99));
        let mut engine = Engine::new(cfg, InterruptStrategy::VirtualInstruction, backend);
        engine.load(slot, program.clone()).unwrap();
        engine.request_at(0, slot).unwrap();
        let report = engine.run().unwrap();
        let out = engine.backend().image(slot).unwrap().read_output(program.layers.last().unwrap());
        (report.final_cycle, out)
    };
    assert_eq!(run(vi), run(decoded));
}

#[test]
fn measured_vi_latency_respects_analytical_worst_case() {
    // Invariant 6 of DESIGN.md: for requests landing inside a layer, the
    // measured VI t1 never exceeds the closed-form worst case for that
    // layer (one CalcBlob), plus the loads/saves the blob interleaves.
    let cfg = AccelConfig::paper_big();
    let compiler = Compiler::new(cfg.arch);
    let net = zoo::mobilenet_v1(Shape3::new(3, 96, 96)).unwrap();
    let vi = compiler.compile_vi(&net).unwrap();
    let hi_prog = compiler.compile_vi(&zoo::tiny(Shape3::new(3, 16, 16)).unwrap()).unwrap();

    // Solo makespan.
    let span = {
        let slot = TaskSlot::LOWEST;
        let mut e = Engine::new(cfg, InterruptStrategy::VirtualInstruction, TimingBackend::new());
        e.load(slot, vi.clone()).unwrap();
        e.request_at(0, slot).unwrap();
        e.run().unwrap().completed_jobs[0].finish
    };

    for i in 0..10 {
        let request = span * (2 * i + 1) / 20;
        let (hi, lo) = (TaskSlot::new(1).unwrap(), TaskSlot::new(3).unwrap());
        let mut e = Engine::new(cfg, InterruptStrategy::VirtualInstruction, TimingBackend::new());
        e.load(hi, hi_prog.clone()).unwrap();
        e.load(lo, vi.clone()).unwrap();
        e.request_at(0, lo).unwrap();
        e.request_at(request, hi).unwrap();
        let report = e.run().unwrap();
        let ev = report.interrupts[0];
        let meta = &vi.layers[usize::from(ev.layer)];
        let bound = analysis::t1_vi_worst(&cfg, meta);
        // Allow the blob's DMA interleaving (loads dominated by the data
        // rows) on top of the pure-compute bound.
        let slack = 4 * cfg.dma_cycles(u64::from(cfg.arch.data_buffer_bytes / 4));
        assert!(
            ev.t1 <= bound + slack,
            "t1 {} exceeds worst case {} + slack {} in layer {} (`{}`)",
            ev.t1,
            bound,
            slack,
            ev.layer,
            meta.name
        );
    }
}

#[test]
fn strategies_agree_on_total_work() {
    // The same pair of jobs completes under every strategy, with the same
    // busy cycles (only scheduling overheads differ).
    let cfg = AccelConfig::paper_big();
    let compiler = Compiler::new(cfg.arch);
    let lo_net = zoo::tiny(Shape3::new(3, 64, 64)).unwrap();
    let hi_net = zoo::tiny(Shape3::new(3, 32, 32)).unwrap();
    let lo_vi = compiler.compile_vi(&lo_net).unwrap();
    let lo_orig = compiler.compile(&lo_net).unwrap();
    let hi_vi = compiler.compile_vi(&hi_net).unwrap();
    let hi_orig = compiler.compile(&hi_net).unwrap();

    let mut busys = Vec::new();
    for strategy in [
        InterruptStrategy::NonPreemptive,
        InterruptStrategy::CpuLike,
        InterruptStrategy::LayerByLayer,
        InterruptStrategy::VirtualInstruction,
    ] {
        let vi = matches!(strategy, InterruptStrategy::VirtualInstruction);
        let (hi, lo) = (TaskSlot::new(1).unwrap(), TaskSlot::new(3).unwrap());
        let mut e = Engine::new(cfg, strategy, TimingBackend::new());
        e.load(hi, if vi { hi_vi.clone() } else { hi_orig.clone() }).unwrap();
        e.load(lo, if vi { lo_vi.clone() } else { lo_orig.clone() }).unwrap();
        e.request_at(0, lo).unwrap();
        e.request_at(3_000, hi).unwrap();
        let r = e.run().unwrap();
        assert_eq!(r.completed_jobs.len(), 2, "{strategy}");
        let lo_busy = r.jobs_of(lo).next().unwrap().busy_cycles;
        busys.push(lo_busy);
    }
    // Non-preemptive / cpu-like / layer-by-layer run the identical
    // original stream; VI adds nothing when interrupts don't take its
    // virtual instructions (they did here, but busy excludes t2/t4).
    assert_eq!(busys[0], busys[1]);
    assert_eq!(busys[0], busys[2]);
    assert_eq!(busys[0], busys[3], "VI busy cycles must match the original stream");
}

#[test]
fn dslam_outperforms_non_preemptive_on_deadlines() {
    use inca::dslam::mission::{Mission, MissionConfig};
    let mut base = MissionConfig::small_test();
    base.duration_s = 1.5;
    // Make FE genuinely contend with PR: bigger FE than the small default.
    base.fe_input = Shape3::new(1, 240, 320);
    base.pr_input = Shape3::new(3, 240, 320);

    let vi = Mission::new(base.clone()).unwrap().run().unwrap();
    let mut non = base;
    non.strategy = InterruptStrategy::NonPreemptive;
    let non = Mission::new(non).unwrap().run().unwrap();

    let vi_misses: usize = vi.agents.iter().map(|a| a.deadline_misses).sum();
    let non_misses: usize = non.agents.iter().map(|a| a.deadline_misses).sum();
    assert_eq!(vi_misses, 0, "VI strategy must meet all FE deadlines");
    assert!(
        non_misses > 0,
        "non-preemptive accelerator should miss FE deadlines (got {non_misses})"
    );
}
