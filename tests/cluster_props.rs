//! Fleet-level acceptance properties for [`inca::cluster`]:
//!
//! 1. **Conservation** — across every gateway a cluster routes, sheds,
//!    steals or cascades through, the per-tenant ledger still balances:
//!    `submitted == admitted + rejected + shed`, and once drained
//!    `admitted == completed + dropped + skipped`. Work stealing and
//!    shed cascades move requests *between* ledgers, they never leak or
//!    mint them.
//! 2. **Hard-lane isolation** — at 4 gateways × 4 cores under the
//!    VirtualInstruction strategy, a best-effort flood (with stealing
//!    and elastic scaling churning the fleet underneath) moves the hard
//!    lane's p99 latency by at most ±10% versus the same hard schedule
//!    on an otherwise idle fleet.
//! 3. **Byte identity** — the full observable surface of a cluster run
//!    (responses with their serving gateway, drained ledgers, metrics
//!    snapshot, merged fleet timeline, route/steal/cascade/resize
//!    counters, cluster advance stats, ground-truth reload cycles) is
//!    identical across repeat runs, [`FuncBackend`] worker-thread
//!    counts, and both advance modes. The cluster-level skip rule is
//!    cycle-domain, so even its [`AdvanceStats`] must not vary with the
//!    advance mode — unlike the per-gateway `event.*` counters, which
//!    are mode-specific by design and are stripped before comparison.

use std::sync::Arc;

use inca::accel::{
    AccelConfig, AdvanceMode, AdvanceStats, Backend, CoreId, CorePool, Engine, FuncBackend,
    InterruptStrategy, TimingBackend,
};
use inca::cluster::{Cluster, ElasticConfig, GatewayId, RoutePolicy, RouteStats};
use inca::compiler::Compiler;
use inca::isa::{Program, TaskSlot};
use inca::model::{zoo, Shape3};
use inca::obs::{Metrics, MetricsSnapshot};
use inca::serve::{
    DropPolicy, Gateway, PlacePolicy, Response, SchedPolicy, TenantId, TenantSpec, TenantStats,
};
use inca_bench::workload::Gaps;

fn cfg() -> AccelConfig {
    AccelConfig::paper_small()
}

/// Distinct best-effort networks (more than one core's task slots) plus
/// the small hard-lane network, all compiled for VirtualInstruction.
fn programs() -> Vec<Arc<Program>> {
    let c = Compiler::new(cfg().arch);
    (0..6u32)
        .map(|i| {
            let side = 12 + 4 * i;
            Arc::new(c.compile_vi(&zoo::tiny(Shape3::new(3, side, side)).unwrap()).unwrap())
        })
        .collect()
}

fn makespan(program: &Arc<Program>) -> u64 {
    let slot = TaskSlot::new(3).unwrap();
    let mut e = Engine::new(cfg(), InterruptStrategy::VirtualInstruction, TimingBackend::new());
    e.load(slot, Arc::clone(program)).unwrap();
    e.request_at(0, slot).unwrap();
    e.run().unwrap().completed_jobs[0].finish
}

fn p99(values: &mut [u64]) -> u64 {
    assert!(!values.is_empty());
    values.sort_unstable();
    values[(99 * values.len()).div_ceil(100) - 1]
}

struct Fleet<B: Backend> {
    cluster: Cluster<B>,
    tenants: Vec<TenantId>,
    hard: TenantId,
    mean_gap: u64,
}

fn build_fleet<B: Backend>(
    gateways: usize,
    cores: usize,
    mut make_backend: impl FnMut() -> B,
) -> Fleet<B> {
    let gws = (0..gateways)
        .map(|_| {
            let pool = CorePool::new(
                cores,
                cfg(),
                InterruptStrategy::VirtualInstruction,
                &mut make_backend,
            );
            Gateway::new(pool, SchedPolicy::FixedPriority, PlacePolicy::TenantAffinity)
        })
        .collect();
    let mut cluster = Cluster::new(gws, RoutePolicy::WeightCacheAware);
    let programs = programs();
    let mean_gap = makespan(&programs[5]);
    cluster.set_batch_window(mean_gap / 4);
    let tenants: Vec<TenantId> = programs
        .iter()
        .enumerate()
        .map(|(i, p)| {
            cluster.register(
                TenantSpec::new(format!("be{i}"), Arc::clone(p))
                    .weight(1 + (i % 3) as u8)
                    .queue(3, DropPolicy::Reject),
            )
        })
        .collect();
    let hard = cluster.register(
        TenantSpec::new("estop", Arc::clone(&programs[0]))
            .hard(mean_gap * 64)
            .queue(8, DropPolicy::Reject),
    );
    Fleet { cluster, tenants, hard, mean_gap }
}

/// Drives `fleet` with the hard schedule (every `mean_gap * 2`) and, when
/// `flood`, a best-effort burst storm on top. Returns every drained
/// response with its serving gateway.
fn drive<B: Backend>(
    fleet: &mut Fleet<B>,
    requests: u64,
    flood: bool,
) -> Vec<(GatewayId, Response)> {
    let Fleet { cluster, tenants, hard, mean_gap } = fleet;
    let (hard, mean_gap) = (*hard, *mean_gap);
    let mut gaps = Gaps::new(77);
    let mut now = 0u64;
    for i in 0..requests {
        // Tail frames are spaced beyond the batch window so the fleet
        // fully drains between them; the spacing is the same with and
        // without the flood, keeping the hard schedules comparable.
        let tail = i >= requests * 3 / 4;
        now += if tail { mean_gap * 12 } else { mean_gap * 2 };
        cluster.run_until(now).expect("engine");
        cluster.submit(now, hard).expect("hard lane never sheds in these runs");
        if flood {
            let focus = tenants[gaps.pick(tenants.len() as u64) as usize];
            if tail {
                // Tail phase: a small burst lands on only a few of the
                // drained gateways; the mid-window barrier below gives
                // a still-idle gateway the chance to steal the batched
                // work before its flush deadline (and exercises elastic
                // shrink and the cluster skip rule).
                for _ in 0..3 {
                    let _ = cluster.submit(now, focus);
                }
            } else {
                // Storm phase: a burst far beyond one tenant's queue
                // depth floods every gateway through shed cascades and
                // forces real sheds once the whole fleet is saturated.
                for _ in 0..20 {
                    let _ = cluster.submit(now, focus);
                }
                let stray = tenants[gaps.pick(tenants.len() as u64) as usize];
                let _ = cluster.submit(now + gaps.next(mean_gap / 8) % mean_gap, stray);
            }
        }
        if tail {
            // A barrier inside the batch window: rebalance runs while
            // the tail burst is still batched and stealable.
            cluster.run_until(now + mean_gap * 2).expect("engine");
        }
    }
    cluster.run_to_idle(u64::MAX).expect("engine");
    cluster.drain_responses()
}

fn hard_latencies(responses: &[(GatewayId, Response)], hard: TenantId) -> Vec<u64> {
    responses.iter().filter(|(_, r)| r.tenant == hard).map(|(_, r)| r.latency()).collect()
}

/// The per-tenant ledger must balance on every gateway individually and
/// therefore fleet-wide, no matter how many cascades/steals moved work.
fn assert_conserved<B: Backend>(cluster: &Cluster<B>, label: &str) {
    for g in 0..cluster.gateway_count() {
        let gw = cluster.gateway(GatewayId(g));
        let t = gw.totals();
        assert_eq!(
            t.submitted,
            t.admitted + t.rejected + t.shed,
            "{label}: gw{g} admission ledger out of balance: {t:?}"
        );
        assert_eq!(
            t.admitted,
            t.completed + t.dropped + t.skipped,
            "{label}: gw{g} drained ledger out of balance: {t:?}"
        );
    }
    let t = cluster.totals();
    assert_eq!(t.submitted, t.admitted + t.rejected + t.shed, "{label}: fleet ledger: {t:?}");
    assert_eq!(t.admitted, t.completed + t.dropped + t.skipped, "{label}: fleet drain: {t:?}");
}

#[test]
fn conservation_and_hard_lane_isolation_under_flood() {
    const HARD_FRAMES: u64 = 32;

    // Baseline: the hard schedule on an otherwise idle fleet. Both
    // fleets get the same long batch window (only best-effort work is
    // batched, so the hard comparison stays fair) — long enough that
    // batched backlog survives to a barrier where an idle gateway can
    // steal it.
    let mut solo = build_fleet(4, 4, TimingBackend::new);
    let window = solo.mean_gap * 8;
    solo.cluster.set_batch_window(window);
    let solo_responses = drive(&mut solo, HARD_FRAMES, false);
    let mut solo_lat = hard_latencies(&solo_responses, solo.hard);
    assert_eq!(solo_lat.len() as u64, HARD_FRAMES);
    assert_conserved(&solo.cluster, "solo");
    let solo_p99 = p99(&mut solo_lat);

    // Same hard schedule under a best-effort flood with the whole fleet
    // machinery on: stealing, elastic scaling, shed cascades.
    let mut flood = build_fleet(4, 4, TimingBackend::new);
    flood.cluster.set_batch_window(window);
    flood.cluster.set_elastic(Some(ElasticConfig::default()));
    flood.cluster.set_steal_batch(2);
    let flood_responses = drive(&mut flood, HARD_FRAMES, true);
    let mut flood_lat = hard_latencies(&flood_responses, flood.hard);
    assert_eq!(flood_lat.len() as u64, HARD_FRAMES);
    assert_conserved(&flood.cluster, "flood");
    let flood_p99 = p99(&mut flood_lat);

    // The flood really exercised the moving parts...
    let totals = flood.cluster.totals();
    assert!(totals.shed > 0, "flood must shed somewhere: {totals:?}");
    assert!(flood.cluster.stolen() > 0, "flood must trigger work stealing");
    assert!(flood.cluster.resizes() > 0, "flood must trigger elastic resizes");
    assert!(flood.cluster.advance_stats().skips > 0, "idle gateways must be skipped");

    // ...and the hard lane never felt it: p99 within ±10% of solo.
    let tolerance = solo_p99 / 10;
    assert!(
        flood_p99.abs_diff(solo_p99) <= tolerance,
        "hard-lane p99 isolation broken: solo {solo_p99} vs flood {flood_p99} \
         (tolerance {tolerance})"
    );
}

/// Everything a cluster run can observably produce. Two runs are "the
/// same run" iff these compare equal.
#[derive(Debug, PartialEq)]
struct ClusterObservables {
    responses: Vec<(GatewayId, Response)>,
    totals: TenantStats,
    /// Metrics snapshot with the mode-specific per-gateway `event.*`
    /// counters stripped (everything else must match bytewise).
    metrics_json: String,
    /// Merged fleet timeline without the advance columns.
    timeline_json: String,
    route: RouteStats,
    stolen: u64,
    cascades: u64,
    resizes: u64,
    /// Cluster-level advance stats are cycle-domain and therefore mode-
    /// invariant — compared verbatim, not stripped.
    stats: AdvanceStats,
    reload_cycles: u64,
}

/// Drops every counter whose key involves an `event.` segment — the
/// per-gateway engine wake/skip tallies legitimately differ between
/// advance modes (`cluster.gwN.event.*`, `cluster.gwN.serve.coreM....`
/// stays).
fn strip_event(m: &Metrics) -> Metrics {
    let mut out = Metrics::new();
    for (k, v) in m.counters().filter(|(k, _)| !k.contains("event.")) {
        out.inc(k, v);
    }
    for (k, v) in m.gauges() {
        out.set_gauge(k, v);
    }
    for (k, h) in m.histograms() {
        out.insert_histogram(k, h.clone());
    }
    out
}

fn func_run(threads: usize, mode: AdvanceMode) -> ClusterObservables {
    let mut fleet = build_fleet(3, 2, || FuncBackend::with_threads(threads));
    fleet.cluster.set_advance_mode(mode);
    fleet.cluster.set_elastic(Some(ElasticConfig::default()));
    fleet.cluster.set_steal_batch(2);
    fleet.cluster.enable_timeline(fleet.mean_gap, 4096);

    // The functional backend executes real int8 arithmetic, so every
    // core that might serve a tenant (any of them, thanks to stealing)
    // needs the tenant's DDR context image installed.
    let specs: Vec<Arc<Program>> = fleet
        .tenants
        .iter()
        .chain(std::iter::once(&fleet.hard))
        .map(|&t| Arc::clone(&fleet.cluster.gateway(GatewayId(0)).spec(t).program))
        .collect();
    for g in 0..fleet.cluster.gateway_count() {
        let gw = fleet.cluster.gateway_mut(GatewayId(g));
        for core in 0..gw.pool().cores() {
            for (i, (&t, program)) in
                fleet.tenants.iter().chain(std::iter::once(&fleet.hard)).zip(&specs).enumerate()
            {
                let image = inca::accel::DdrImage::for_program(program, 4_000 + i as u64);
                gw.pool_mut()
                    .core_mut(CoreId(core))
                    .backend_mut()
                    .install_ctx_image(t.ctx(), image);
            }
        }
    }

    let responses = drive(&mut fleet, 12, true);
    assert!(!hard_latencies(&responses, fleet.hard).is_empty());
    let Fleet { mut cluster, .. } = fleet;
    let timeline = cluster.take_fleet_timeline("fleet").expect("timeline enabled");
    ClusterObservables {
        responses,
        totals: cluster.totals(),
        metrics_json: MetricsSnapshot::new("cluster", strip_event(&cluster.metrics())).to_json(),
        timeline_json: timeline.without_advance().to_json(),
        route: cluster.route_stats(),
        stolen: cluster.stolen(),
        cascades: cluster.cascades(),
        resizes: cluster.resizes(),
        stats: cluster.advance_stats(),
        reload_cycles: cluster.reload_cycles(),
    }
}

#[test]
fn cluster_runs_are_byte_identical_across_threads_modes_and_repeats() {
    let baseline = func_run(1, AdvanceMode::EventDriven);
    assert!(!baseline.responses.is_empty());
    assert!(
        baseline.stats.skips > 0,
        "the fleet barrier must skip idle gateways: {:?}",
        baseline.stats
    );

    for (threads, mode, what) in [
        (1, AdvanceMode::EventDriven, "repeat run"),
        (4, AdvanceMode::EventDriven, "4 worker threads"),
        (1, AdvanceMode::Stepping, "stepping advance"),
        (4, AdvanceMode::Stepping, "stepping advance, 4 worker threads"),
    ] {
        let other = func_run(threads, mode);
        assert_eq!(baseline, other, "cluster run diverged under {what}");
    }
}
