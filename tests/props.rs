//! Property-based tests over the core invariants (DESIGN.md §6), using
//! randomly generated networks, instruction fields and interrupt
//! schedules.

use proptest::prelude::*;

use inca::accel::{AccelConfig, DdrImage, Engine, FuncBackend, InterruptStrategy, TimingBackend};
use inca::compiler::{CompileOptions, Compiler, LoopOrder};
use inca::isa::{DdrRange, Instr, Opcode, Program, TaskSlot, Tile};
use inca::model::{Network, NetworkBuilder, Shape3};

fn arb_opcode() -> impl Strategy<Value = Opcode> {
    prop::sample::select(Opcode::ALL.to_vec())
}

fn arb_instr() -> impl Strategy<Value = Instr> {
    (
        arb_opcode(),
        any::<u16>(),
        any::<u32>(),
        any::<(u16, u16, u16, u16, u16, u16)>(),
        any::<u64>(),
        any::<u32>(),
        any::<u32>(),
    )
        .prop_map(|(op, layer, blob, t, addr, bytes, save_id)| Instr {
            op,
            layer,
            blob,
            tile: Tile::new(t.0, t.1, t.2, t.3, t.4, t.5),
            ddr: DdrRange::new(addr, bytes),
            save_id,
        })
}

/// A small random network: input shape + a handful of layers drawn from
/// the supported ops, with shapes kept legal by construction.
fn arb_network() -> impl Strategy<Value = Network> {
    let dims = (1u32..=8, 4u32..=5, 4u32..=5); // channels, log2ish h, w
    (dims, prop::collection::vec(0u8..5, 1..5), any::<bool>()).prop_map(
        |((c, hpow, wpow), ops, residual)| {
            let shape = Shape3::new(c, 1 << hpow, 1 << wpow);
            let mut b = NetworkBuilder::new("prop", shape);
            let mut x = b.input_id();
            let mut idx = 0;
            for op in ops {
                idx += 1;
                let name = format!("l{idx}");
                x = match op {
                    0 => b.conv(&name, x, 8, 3, 1, 1, true).unwrap(),
                    1 => b.conv(&name, x, 12, 1, 1, 0, false).unwrap(),
                    2 => b.dw_conv(&name, x, 3, 1, 1, true).unwrap(),
                    3 => b.max_pool(&name, x, 2, 2, 0).unwrap(),
                    _ => b.avg_pool(&name, x, 2, 2, 0).unwrap(),
                };
            }
            if residual {
                let y = b.conv("res_a", x, 8, 3, 1, 1, false).unwrap();
                let z = b.conv("res_b", y, 8, 3, 1, 1, false).unwrap();
                let y2 = b.conv("res_c", x, 8, 1, 1, 0, false).unwrap();
                x = b.add("res_add", y2, z, true).unwrap();
            }
            b.finish(vec![x]).unwrap()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn instr_encoding_round_trips(instr in arb_instr()) {
        let bytes = instr.encode();
        let back = Instr::decode(&bytes).unwrap();
        prop_assert_eq!(back, instr);
    }

    #[test]
    fn compiled_programs_validate_and_cover_outputs(net in arb_network()) {
        let cfg = AccelConfig::paper_small();
        let compiler = Compiler::new(cfg.arch);
        let p = compiler.compile(&net).unwrap();
        p.validate().unwrap();
        // Every layer's output region is saved exactly once.
        for meta in &p.layers {
            let saved: u64 = p
                .instrs
                .iter()
                .filter(|i| i.op == Opcode::Save && i.layer == meta.id)
                .map(|i| u64::from(i.ddr.bytes))
                .sum();
            prop_assert_eq!(saved, meta.out_shape.bytes());
        }
        // Every CalcBlob has exactly one CALC_F.
        for br in &p.blobs {
            let n = p.instrs[br.start as usize..br.end as usize]
                .iter()
                .filter(|i| i.op == Opcode::CalcF)
                .count();
            prop_assert_eq!(n, 1);
        }
    }

    #[test]
    fn vi_erasure_holds(net in arb_network()) {
        let cfg = AccelConfig::paper_small();
        let compiler = Compiler::new(cfg.arch);
        let original = compiler.compile(&net).unwrap();
        let vi = compiler.compile_vi(&net).unwrap();
        let stripped: Vec<Instr> = vi.original_instrs().map(|(_, i)| *i).collect();
        prop_assert_eq!(stripped, original.instrs);
        // Points sit only after CALC_F or SAVE.
        for point in &vi.interrupt_points {
            let before = vi.instrs[point.vir_start as usize - 1].op;
            prop_assert!(matches!(before, Opcode::CalcF | Opcode::Save));
        }
    }

    #[test]
    fn interrupt_transparency_random_schedule(
        net in arb_network(),
        frac in 1u64..99,
        strategy_idx in 0usize..3,
        loop_order_idx in 0usize..2,
    ) {
        let cfg = AccelConfig::paper_small();
        let loop_order = [LoopOrder::HeightOuter, LoopOrder::ChannelOuter][loop_order_idx];
        let compiler = Compiler::with_options(
            cfg.arch,
            CompileOptions::default().with_loop_order(loop_order),
        );
        let strategy = [
            InterruptStrategy::VirtualInstruction,
            InterruptStrategy::LayerByLayer,
            InterruptStrategy::CpuLike,
        ][strategy_idx];
        let lo_prog = if matches!(strategy, InterruptStrategy::VirtualInstruction) {
            compiler.compile_vi(&net).unwrap()
        } else {
            compiler.compile(&net).unwrap()
        };
        let hi_prog = compiler
            .compile_vi(&inca::model::zoo::tiny(Shape3::new(3, 16, 16)).unwrap())
            .unwrap();
        let lo = TaskSlot::new(3).unwrap();
        let hi = TaskSlot::new(1).unwrap();

        // Uninterrupted reference.
        let expected = {
            let mut backend = FuncBackend::new();
            backend.install_image(lo, DdrImage::for_program(&lo_prog, 5));
            let mut e = Engine::new(cfg, strategy, backend);
            e.load(lo, lo_prog.clone()).unwrap();
            e.request_at(0, lo).unwrap();
            e.run().unwrap();
            let img = e.backend().image(lo).unwrap();
            lo_prog.layers.iter().map(|m| img.read_output(m)).collect::<Vec<_>>()
        };

        // Makespan to position the request.
        let span = {
            let mut e = Engine::new(cfg, strategy, TimingBackend::new());
            e.load(lo, lo_prog.clone()).unwrap();
            e.request_at(0, lo).unwrap();
            e.run().unwrap().completed_jobs[0].finish
        };

        let mut backend = FuncBackend::new();
        backend.install_image(lo, DdrImage::for_program(&lo_prog, 5));
        backend.install_image(hi, DdrImage::for_program(&hi_prog, 6));
        let mut e = Engine::new(cfg, strategy, backend);
        e.load(lo, lo_prog.clone()).unwrap();
        e.load(hi, hi_prog).unwrap();
        e.request_at(0, lo).unwrap();
        e.request_at(span * frac / 100, hi).unwrap();
        e.run().unwrap();
        let img = e.backend().image(lo).unwrap();
        for (meta, exp) in lo_prog.layers.iter().zip(&expected) {
            prop_assert_eq!(&img.read_output(meta), exp, "layer `{}`", meta.name);
        }
    }

    #[test]
    fn timing_is_deterministic(net in arb_network(), at in 0u64..100_000) {
        let cfg = AccelConfig::paper_small();
        let p = Compiler::new(cfg.arch).compile_vi(&net).unwrap();
        let run = || {
            let lo = TaskSlot::new(3).unwrap();
            let mut e = Engine::new(cfg, InterruptStrategy::VirtualInstruction, TimingBackend::new());
            e.load(lo, p.clone()).unwrap();
            e.request_at(at, lo).unwrap();
            e.run().unwrap().final_cycle
        };
        prop_assert_eq!(run(), run());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn tile_ranges_are_consistent(t in any::<(u16, u16, u16, u16, u16, u16)>()) {
        let tile = Tile::new(t.0, t.1, t.2, t.3, t.4, t.5);
        prop_assert_eq!(tile.row_range().len(), usize::from(t.1));
        prop_assert_eq!(tile.chan_range().len(), usize::from(t.3));
        prop_assert_eq!(tile.ic_range().len(), usize::from(t.5));
    }

    #[test]
    fn program_stream_encoding_round_trips(instrs in prop::collection::vec(arb_instr(), 0..64)) {
        let b = Program::builder("p");
        // Bypass validation: use raw encode/decode of the stream.
        for i in &instrs {
            let _ = b; // builder unused for raw stream
            let _ = i;
        }
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&inca::isa::encode::MAGIC);
        bytes.extend_from_slice(&inca::isa::encode::VERSION.to_le_bytes());
        bytes.extend_from_slice(&40u16.to_le_bytes());
        bytes.extend_from_slice(&(instrs.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        for i in &instrs {
            bytes.extend_from_slice(&i.encode());
        }
        let decoded = inca::isa::encode::decode_stream(&bytes).unwrap();
        prop_assert_eq!(decoded, instrs);
    }
}
