//! The timeline acceptance bar (DESIGN.md §5.9): cycle-domain frames
//! are pure functions of the virtual clock, so the sampled series, the
//! flight-recorder dumps and the metrics snapshot must be
//! **byte-identical** across repeat runs and FuncBackend thread counts,
//! under every interrupt strategy and both advance modes. Across
//! EventDriven vs Stepping the only permitted difference is *work*: the
//! `advance.*` columns (and the `event.*` counters they reconcile with)
//! may differ, so the advance-stripped series and the recorder dumps —
//! which strip them by construction — must match to the byte.
//!
//! A property test closes the accounting loop: summing per-frame counter
//! deltas over any observation stream reproduces the final cumulative
//! snapshot, and gauge columns end on the final instantaneous value.

use inca::accel::{AdvanceMode, InterruptStrategy};
use inca::obs::{CoreObs, Metrics, MetricsSnapshot, Observation, Sampler, TenantObs};
use inca_bench::{serve_timeline_scenario, TimelineRun};
use proptest::prelude::*;

const MODES: [AdvanceMode; 2] = [AdvanceMode::EventDriven, AdvanceMode::Stepping];

fn prop_cases(default_cases: u32) -> ProptestConfig {
    let cases =
        std::env::var("INCA_PROP_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(default_cases);
    ProptestConfig::with_cases(cases)
}

/// Everything a run exports, as bytes.
fn exported(run: &TimelineRun) -> (String, Option<String>, Option<String>, String) {
    (
        run.series.to_json(),
        run.chrome_dump.clone(),
        run.slice_dump.clone(),
        run.metrics_json.clone(),
    )
}

/// The full determinism matrix for one strategy: repeat runs and thread
/// counts must reproduce every export byte-for-byte (including the
/// mode-dependent `advance.*` columns); EventDriven vs Stepping must
/// agree on the advance-stripped series and on both recorder dumps.
fn assert_matrix(strategy: InterruptStrategy) {
    let mut per_mode = Vec::new();
    for mode in MODES {
        let base = serve_timeline_scenario(strategy, mode, 1, true);
        let repeat = serve_timeline_scenario(strategy, mode, 1, true);
        assert_eq!(exported(&base), exported(&repeat), "{strategy}/{mode:?}: repeat run differs");
        let threaded = serve_timeline_scenario(strategy, mode, 4, true);
        assert_eq!(
            exported(&base),
            exported(&threaded),
            "{strategy}/{mode:?}: 4-thread FuncBackend differs from 1-thread"
        );

        let v = base.violation.as_ref().unwrap_or_else(|| {
            panic!("{strategy}/{mode:?}: injected spike did not trip the recorder")
        });
        assert_eq!(v.spec, "hard");
        assert!(v.clause.contains("depth"), "unexpected clause {:?}", v.clause);
        assert!(base.chrome_dump.is_some() && base.slice_dump.is_some());

        // from_json(to_json) round-trips to the byte on real output.
        let json = base.series.to_json();
        let back = inca::obs::TimeSeries::from_json(&json).expect("round-trip");
        assert_eq!(back.to_json(), json);

        per_mode.push((
            base.series.without_advance().to_json(),
            base.chrome_dump.clone(),
            base.slice_dump.clone(),
        ));
    }
    assert_eq!(
        per_mode[0], per_mode[1],
        "{strategy}: EventDriven vs Stepping differ beyond advance.* columns"
    );
}

#[test]
fn timeline_matrix_non_preemptive() {
    assert_matrix(InterruptStrategy::NonPreemptive);
}

#[test]
fn timeline_matrix_cpu_like() {
    assert_matrix(InterruptStrategy::CpuLike);
}

#[test]
fn timeline_matrix_layer_by_layer() {
    assert_matrix(InterruptStrategy::LayerByLayer);
}

#[test]
fn timeline_matrix_virtual_instruction() {
    assert_matrix(InterruptStrategy::VirtualInstruction);
}

/// The scenario's own metrics snapshot reconciles with the series: the
/// cumulative `event.*` counters equal the summed `advance.*` frame
/// deltas, and the `timeline.*` bookkeeping counters match the ring.
#[test]
fn scenario_columns_reconcile_with_the_metrics_snapshot() {
    let run = serve_timeline_scenario(
        InterruptStrategy::VirtualInstruction,
        AdvanceMode::EventDriven,
        1,
        true,
    );
    let snap = MetricsSnapshot::from_json(&run.metrics_json).expect("metrics-v1");
    let sum = |col: &str| run.series.column(col).expect(col).iter().sum::<u64>();
    assert_eq!(snap.metrics.counter("event.barriers"), sum("advance.barriers"));
    assert_eq!(snap.metrics.counter("event.wakes"), sum("advance.wakes"));
    assert_eq!(snap.metrics.counter("event.skips"), sum("advance.skips"));
    assert_eq!(snap.metrics.counter("timeline.frames"), run.series.len() as u64);
    assert_eq!(snap.metrics.counter("timeline.dropped"), run.series.dropped);
    assert_eq!(snap.metrics.counter("timeline.recorder.tripped"), 1);
}

/// Two gateways' series (same interval, same grid) merge into one fleet
/// view: groups are renumbered and appended, shared columns summed.
#[test]
fn fleet_merge_appends_groups_and_sums_advance_columns() {
    let a = serve_timeline_scenario(
        InterruptStrategy::VirtualInstruction,
        AdvanceMode::EventDriven,
        1,
        false,
    )
    .series;
    let b = serve_timeline_scenario(
        InterruptStrategy::VirtualInstruction,
        AdvanceMode::EventDriven,
        1,
        false,
    )
    .series;
    let fleet = a.merge(&b).expect("same grid merges");
    assert_eq!(fleet.cores(), a.cores() + b.cores());
    assert_eq!(fleet.tenants(), a.tenants() + b.tenants());
    let sum = |s: &inca::obs::TimeSeries, col: &str| s.column(col).unwrap().iter().sum::<u64>();
    assert_eq!(
        sum(&fleet, "advance.barriers"),
        sum(&a, "advance.barriers") + sum(&b, "advance.barriers")
    );
    let round = inca::obs::TimeSeries::from_json(&fleet.to_json()).unwrap();
    assert_eq!(round.to_json(), fleet.to_json());
}

/// Step layout for the property test: 17 small increments per step.
/// Indices 0-3 drive the two cores' cumulative busy/reload counters;
/// 4/9 and 5/10 are the tenants' instantaneous gauges; the rest are
/// cumulative tenant counters and advance counters.
fn obs_from(cycle: u64, cum: &[u64], raw: &[u64]) -> Observation {
    Observation {
        cycle,
        cores: vec![
            CoreObs { busy_cycles: cum[0], reload_cycles: cum[1] },
            CoreObs { busy_cycles: cum[2], reload_cycles: cum[3] },
        ],
        tenants: vec![
            TenantObs {
                hard: true,
                queue_depth: raw[4],
                outstanding: raw[5],
                missed: cum[6],
                shed: cum[7],
                completed: cum[8],
            },
            TenantObs {
                hard: false,
                queue_depth: raw[9],
                outstanding: raw[10],
                missed: cum[11],
                shed: cum[12],
                completed: cum[13],
            },
        ],
        barriers: cum[14],
        wakes: cum[15],
        skips: cum[16],
    }
}

proptest! {
    #![proptest_config(prop_cases(48))]

    /// Summing a column's per-frame deltas over ANY observation stream
    /// reproduces the final cumulative snapshot; gauge columns carry the
    /// final instantaneous value in their last frame.
    #[test]
    fn frame_deltas_reconcile_with_the_final_snapshot(
        interval in 1u64..=64,
        steps in prop::collection::vec(
            (1u64..=40, prop::collection::vec(0u64..=5, 17..18)),
            1..40,
        ),
    ) {
        let mut sampler = Sampler::new(interval, 4096);
        let mut cum = vec![0u64; 17];
        let mut cycle = 0u64;
        let mut last_raw = vec![0u64; 17];
        for (gap, raw) in &steps {
            cycle += gap;
            for (c, r) in cum.iter_mut().zip(raw) {
                *c += r;
            }
            sampler.record(obs_from(cycle, &cum, raw));
            last_raw.clone_from(raw);
        }
        sampler.flush(obs_from(cycle + 1, &cum, &last_raw));
        let series = sampler.series("prop", 1_000_000);
        prop_assert_eq!(series.dropped, 0);

        // The "final metrics snapshot": the cumulative counters as a
        // gateway would report them at the end of the run.
        let mut m = Metrics::new();
        let names = [
            ("core0.busy", 0usize), ("core0.reload_cycles", 1),
            ("core1.busy", 2), ("core1.reload_cycles", 3),
            ("tenant0.missed", 6), ("tenant0.shed", 7), ("tenant0.completed", 8),
            ("tenant1.missed", 11), ("tenant1.shed", 12), ("tenant1.completed", 13),
            ("advance.barriers", 14), ("advance.wakes", 15), ("advance.skips", 16),
        ];
        for (name, idx) in names {
            m.inc(name, cum[idx]);
        }
        for (name, _) in names {
            let col = series.column(name).expect(name);
            prop_assert_eq!(
                col.iter().sum::<u64>(),
                m.counter(name),
                "column {} does not reconcile", name
            );
        }
        for (name, idx) in
            [("tenant0.queue_depth", 4usize), ("tenant0.outstanding", 5),
             ("tenant1.queue_depth", 9), ("tenant1.outstanding", 10)]
        {
            let col = series.column(name).expect(name);
            prop_assert_eq!(*col.last().unwrap(), last_raw[idx], "gauge {}", name);
        }
    }
}
