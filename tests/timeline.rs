//! The timeline acceptance bar (DESIGN.md §5.9): cycle-domain frames
//! are pure functions of the virtual clock, so the sampled series, the
//! flight-recorder dumps and the metrics snapshot must be
//! **byte-identical** across repeat runs and FuncBackend thread counts,
//! under every interrupt strategy and both advance modes. Across
//! EventDriven vs Stepping the only permitted difference is *work*: the
//! `advance.*` columns (and the `event.*` counters they reconcile with)
//! may differ, so the advance-stripped series and the recorder dumps —
//! which strip them by construction — must match to the byte.
//!
//! A property test closes the accounting loop: summing per-frame counter
//! deltas over any observation stream reproduces the final cumulative
//! snapshot, and gauge columns end on the final instantaneous value.

use std::collections::BTreeMap;

use inca::accel::{AdvanceMode, InterruptStrategy};
use inca::obs::{
    CoreObs, Metrics, MetricsSnapshot, Observation, Sampler, TenantObs, TimeSeries, Violation,
};
use inca_bench::{serve_timeline_scenario, TimelineRun};
use proptest::prelude::*;

const MODES: [AdvanceMode; 2] = [AdvanceMode::EventDriven, AdvanceMode::Stepping];

fn prop_cases(default_cases: u32) -> ProptestConfig {
    let cases =
        std::env::var("INCA_PROP_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(default_cases);
    ProptestConfig::with_cases(cases)
}

/// Everything a run exports, as bytes.
fn exported(run: &TimelineRun) -> (String, Option<String>, Option<String>, String) {
    (
        run.series.to_json(),
        run.chrome_dump.clone(),
        run.slice_dump.clone(),
        run.metrics_json.clone(),
    )
}

/// The full determinism matrix for one strategy: repeat runs and thread
/// counts must reproduce every export byte-for-byte (including the
/// mode-dependent `advance.*` columns); EventDriven vs Stepping must
/// agree on the advance-stripped series and on both recorder dumps.
fn assert_matrix(strategy: InterruptStrategy) {
    let mut per_mode = Vec::new();
    for mode in MODES {
        let base = serve_timeline_scenario(strategy, mode, 1, true);
        let repeat = serve_timeline_scenario(strategy, mode, 1, true);
        assert_eq!(exported(&base), exported(&repeat), "{strategy}/{mode:?}: repeat run differs");
        let threaded = serve_timeline_scenario(strategy, mode, 4, true);
        assert_eq!(
            exported(&base),
            exported(&threaded),
            "{strategy}/{mode:?}: 4-thread FuncBackend differs from 1-thread"
        );

        let v = base.violation.as_ref().unwrap_or_else(|| {
            panic!("{strategy}/{mode:?}: injected spike did not trip the recorder")
        });
        assert_eq!(v.spec, "hard");
        assert!(v.clause.contains("depth"), "unexpected clause {:?}", v.clause);
        assert!(base.chrome_dump.is_some() && base.slice_dump.is_some());

        // from_json(to_json) round-trips to the byte on real output.
        let json = base.series.to_json();
        let back = inca::obs::TimeSeries::from_json(&json).expect("round-trip");
        assert_eq!(back.to_json(), json);

        per_mode.push((
            base.series.without_advance().to_json(),
            base.chrome_dump.clone(),
            base.slice_dump.clone(),
        ));
    }
    assert_eq!(
        per_mode[0], per_mode[1],
        "{strategy}: EventDriven vs Stepping differ beyond advance.* columns"
    );
}

#[test]
fn timeline_matrix_non_preemptive() {
    assert_matrix(InterruptStrategy::NonPreemptive);
}

#[test]
fn timeline_matrix_cpu_like() {
    assert_matrix(InterruptStrategy::CpuLike);
}

#[test]
fn timeline_matrix_layer_by_layer() {
    assert_matrix(InterruptStrategy::LayerByLayer);
}

#[test]
fn timeline_matrix_virtual_instruction() {
    assert_matrix(InterruptStrategy::VirtualInstruction);
}

/// The scenario's own metrics snapshot reconciles with the series: the
/// cumulative `event.*` counters equal the summed `advance.*` frame
/// deltas, and the `timeline.*` bookkeeping counters match the ring.
#[test]
fn scenario_columns_reconcile_with_the_metrics_snapshot() {
    let run = serve_timeline_scenario(
        InterruptStrategy::VirtualInstruction,
        AdvanceMode::EventDriven,
        1,
        true,
    );
    let snap = MetricsSnapshot::from_json(&run.metrics_json).expect("metrics-v1");
    let sum = |col: &str| run.series.column(col).expect(col).iter().sum::<u64>();
    assert_eq!(snap.metrics.counter("event.barriers"), sum("advance.barriers"));
    assert_eq!(snap.metrics.counter("event.wakes"), sum("advance.wakes"));
    assert_eq!(snap.metrics.counter("event.skips"), sum("advance.skips"));
    assert_eq!(snap.metrics.counter("timeline.frames"), run.series.len() as u64);
    assert_eq!(snap.metrics.counter("timeline.dropped"), run.series.dropped);
    assert_eq!(snap.metrics.counter("timeline.recorder.tripped"), 1);
}

/// Two gateways' series (same interval, same grid) merge into one fleet
/// view: groups are renumbered and appended, shared columns summed.
#[test]
fn fleet_merge_appends_groups_and_sums_advance_columns() {
    let a = serve_timeline_scenario(
        InterruptStrategy::VirtualInstruction,
        AdvanceMode::EventDriven,
        1,
        false,
    )
    .series;
    let b = serve_timeline_scenario(
        InterruptStrategy::VirtualInstruction,
        AdvanceMode::EventDriven,
        1,
        false,
    )
    .series;
    let fleet = a.merge(&b).expect("same grid merges");
    assert_eq!(fleet.cores(), a.cores() + b.cores());
    assert_eq!(fleet.tenants(), a.tenants() + b.tenants());
    let sum = |s: &inca::obs::TimeSeries, col: &str| s.column(col).unwrap().iter().sum::<u64>();
    assert_eq!(
        sum(&fleet, "advance.barriers"),
        sum(&a, "advance.barriers") + sum(&b, "advance.barriers")
    );
    let round = inca::obs::TimeSeries::from_json(&fleet.to_json()).unwrap();
    assert_eq!(round.to_json(), fleet.to_json());
}

/// Step layout for the property test: 17 small increments per step.
/// Indices 0-3 drive the two cores' cumulative busy/reload counters;
/// 4/9 and 5/10 are the tenants' instantaneous gauges; the rest are
/// cumulative tenant counters and advance counters.
fn obs_from(cycle: u64, cum: &[u64], raw: &[u64]) -> Observation {
    Observation {
        cycle,
        cores: vec![
            CoreObs { busy_cycles: cum[0], reload_cycles: cum[1] },
            CoreObs { busy_cycles: cum[2], reload_cycles: cum[3] },
        ],
        tenants: vec![
            TenantObs {
                hard: true,
                queue_depth: raw[4],
                outstanding: raw[5],
                missed: cum[6],
                shed: cum[7],
                completed: cum[8],
            },
            TenantObs {
                hard: false,
                queue_depth: raw[9],
                outstanding: raw[10],
                missed: cum[11],
                shed: cum[12],
                completed: cum[13],
            },
        ],
        barriers: cum[14],
        wakes: cum[15],
        skips: cum[16],
    }
}

/// One synthetic gateway series for the fleet-merge property test:
/// `gaps` spaces the frames on the shared `interval` grid (sparse axes
/// model idle-skipped gateways), `cores`/`tenants` size the column
/// groups, `fill` seeds deterministic column values, `dropped` and
/// `violation` exercise the merged bookkeeping.
#[derive(Debug, Clone)]
struct GwSeries {
    gaps: Vec<u64>,
    cores: usize,
    tenants: usize,
    fill: u64,
    dropped: u64,
    violation: Option<(u64, u64)>,
}

fn arb_gw() -> impl Strategy<Value = GwSeries> {
    (
        prop::collection::vec(1u64..=6, 1..24),
        1usize..=2,
        1usize..=2,
        0u64..=9,
        0u64..=5,
        // The vendored proptest has no `option::of`: draw a presence
        // die alongside the violation payload instead (25% None).
        (0u64..=3, 0u64..=1000, 0u64..=3),
    )
        .prop_map(|(gaps, cores, tenants, fill, dropped, (has, vc, vs))| GwSeries {
            gaps,
            cores,
            tenants,
            fill,
            dropped,
            violation: (has > 0).then_some((vc, vs)),
        })
}

fn build_series(gw: &GwSeries, interval: u64, id: usize) -> TimeSeries {
    let mut cycles = Vec::with_capacity(gw.gaps.len());
    let mut at = 0u64;
    for g in &gw.gaps {
        at += g * interval;
        cycles.push(at);
    }
    let n = cycles.len();
    // Deterministic but gateway-distinct frame values.
    let vals =
        |salt: u64| (0..n as u64).map(|i| (gw.fill + salt + i * (id as u64 + 1)) % 11).collect();
    let mut columns: BTreeMap<String, Vec<u64>> = BTreeMap::new();
    for c in 0..gw.cores {
        columns.insert(format!("core{c}.busy"), vals(c as u64));
        columns.insert(format!("core{c}.reload_cycles"), vals(c as u64 + 3));
    }
    for t in 0..gw.tenants {
        columns.insert(format!("tenant{t}.completed"), vals(t as u64 + 5));
        columns.insert(format!("tenant{t}.queue_depth"), vals(t as u64 + 7));
    }
    columns.insert("advance.barriers".into(), vals(13));
    columns.insert("advance.skips".into(), vals(17));
    TimeSeries {
        name: format!("gw{id}"),
        clock_hz: 1_000_000,
        interval,
        dropped: gw.dropped,
        lanes: vec![false; gw.tenants],
        cycles,
        columns,
        violation: gw.violation.map(|(cycle, spec)| Violation {
            cycle,
            spec: format!("spec{spec}"),
            clause: format!("depth {spec} > 0"),
        }),
    }
}

proptest! {
    #![proptest_config(prop_cases(48))]

    /// Summing a column's per-frame deltas over ANY observation stream
    /// reproduces the final cumulative snapshot; gauge columns carry the
    /// final instantaneous value in their last frame.
    #[test]
    fn frame_deltas_reconcile_with_the_final_snapshot(
        interval in 1u64..=64,
        steps in prop::collection::vec(
            (1u64..=40, prop::collection::vec(0u64..=5, 17..18)),
            1..40,
        ),
    ) {
        let mut sampler = Sampler::new(interval, 4096);
        let mut cum = vec![0u64; 17];
        let mut cycle = 0u64;
        let mut last_raw = vec![0u64; 17];
        for (gap, raw) in &steps {
            cycle += gap;
            for (c, r) in cum.iter_mut().zip(raw) {
                *c += r;
            }
            sampler.record(obs_from(cycle, &cum, raw));
            last_raw.clone_from(raw);
        }
        sampler.flush(obs_from(cycle + 1, &cum, &last_raw));
        let series = sampler.series("prop", 1_000_000);
        prop_assert_eq!(series.dropped, 0);

        // The "final metrics snapshot": the cumulative counters as a
        // gateway would report them at the end of the run.
        let mut m = Metrics::new();
        let names = [
            ("core0.busy", 0usize), ("core0.reload_cycles", 1),
            ("core1.busy", 2), ("core1.reload_cycles", 3),
            ("tenant0.missed", 6), ("tenant0.shed", 7), ("tenant0.completed", 8),
            ("tenant1.missed", 11), ("tenant1.shed", 12), ("tenant1.completed", 13),
            ("advance.barriers", 14), ("advance.wakes", 15), ("advance.skips", 16),
        ];
        for (name, idx) in names {
            m.inc(name, cum[idx]);
        }
        for (name, _) in names {
            let col = series.column(name).expect(name);
            prop_assert_eq!(
                col.iter().sum::<u64>(),
                m.counter(name),
                "column {} does not reconcile", name
            );
        }
        for (name, idx) in
            [("tenant0.queue_depth", 4usize), ("tenant0.outstanding", 5),
             ("tenant1.queue_depth", 9), ("tenant1.outstanding", 10)]
        {
            let col = series.column(name).expect(name);
            prop_assert_eq!(*col.last().unwrap(), last_raw[idx], "gauge {}", name);
        }
    }

    /// Folding a whole fleet of gateway series through
    /// [`TimeSeries::merge`] — sparse axes, uneven group counts, drops
    /// and violations included — loses nothing: the union axis covers
    /// every sampled boundary, per-gateway column groups keep their
    /// delta sums under renumbering, shared columns sum, drop counts
    /// add, and the earliest violation by cycle survives the fold.
    #[test]
    fn fleet_merge_preserves_sums_drops_and_the_earliest_violation(
        interval in 1u64..=64,
        gws in prop::collection::vec(arb_gw(), 2..6),
    ) {
        let series: Vec<TimeSeries> =
            gws.iter().enumerate().map(|(i, g)| build_series(g, interval, i)).collect();
        let mut fleet = series[0].clone();
        for s in &series[1..] {
            fleet = fleet.merge(s).expect("same grid merges");
        }

        // Union axis: strictly increasing, covers every source boundary.
        prop_assert!(fleet.cycles.windows(2).all(|w| w[0] < w[1]));
        for s in &series {
            for c in &s.cycles {
                prop_assert!(fleet.cycles.binary_search(c).is_ok());
            }
        }

        // Group bookkeeping: groups append, lanes concatenate, drops add.
        prop_assert_eq!(fleet.cores(), series.iter().map(TimeSeries::cores).sum::<usize>());
        prop_assert_eq!(fleet.tenants(), series.iter().map(TimeSeries::tenants).sum::<usize>());
        prop_assert_eq!(fleet.lanes.len(), fleet.tenants());
        prop_assert_eq!(fleet.dropped, series.iter().map(|s| s.dropped).sum::<u64>());

        // Delta-sum preservation: each source group's columns reappear
        // renumbered past the groups merged before it, sums intact.
        let (mut core_off, mut tenant_off) = (0usize, 0usize);
        let sum = |s: &TimeSeries, col: &str| s.column(col).expect(col).iter().sum::<u64>();
        for s in &series {
            for (key, v) in &s.columns {
                let merged_key = if let Some(rest) = key.strip_prefix("core") {
                    let digits: String =
                        rest.chars().take_while(char::is_ascii_digit).collect();
                    let i: usize = digits.parse().unwrap();
                    format!("core{}{}", i + core_off, &rest[digits.len()..])
                } else if let Some(rest) = key.strip_prefix("tenant") {
                    let digits: String =
                        rest.chars().take_while(char::is_ascii_digit).collect();
                    let i: usize = digits.parse().unwrap();
                    format!("tenant{}{}", i + tenant_off, &rest[digits.len()..])
                } else {
                    continue;
                };
                prop_assert_eq!(
                    sum(&fleet, &merged_key),
                    v.iter().sum::<u64>(),
                    "group column {} -> {} lost its delta sum", key, merged_key
                );
            }
            core_off += s.cores();
            tenant_off += s.tenants();
        }
        for shared in ["advance.barriers", "advance.skips"] {
            prop_assert_eq!(
                sum(&fleet, shared),
                series.iter().map(|s| sum(s, shared)).sum::<u64>(),
                "shared column {} must sum element-wise", shared
            );
        }

        // The earliest violation by cycle wins the fold.
        let earliest = series.iter().filter_map(|s| s.violation.as_ref())
            .min_by_key(|v| v.cycle);
        match (earliest, &fleet.violation) {
            (None, None) => {}
            (Some(e), Some(got)) => {
                prop_assert_eq!(got.cycle, e.cycle, "kept violation is not the earliest");
            }
            (e, got) => prop_assert!(false, "violation lost or minted: {e:?} vs {got:?}"),
        }

        // The merged fleet view still round-trips to the byte.
        let json = fleet.to_json();
        prop_assert_eq!(TimeSeries::from_json(&json).expect("round-trip").to_json(), json);
    }
}
