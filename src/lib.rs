//! # INCA — an INterruptible CNN Accelerator framework
//!
//! A full reproduction of *"INCA: INterruptible CNN Accelerator for
//! Multi-tasking in Embedded Robots"* (DAC 2020) as a Rust workspace. The
//! FPGA prototype is substituted by a cycle-calibrated simulator (see
//! `DESIGN.md`); everything above the silicon — the VI-ISA, the compiler,
//! the IAU, the scheduling behaviour, and the DSLAM application — is
//! implemented for real.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`isa`] — the original ISA + virtual-instruction extension (VI-ISA),
//!   binary encoding, program containers;
//! * [`model`] — CNN graph IR and the model zoo (SuperPoint, GeM/ResNet101,
//!   VGG16, ResNet-18/50, MobileNetV1);
//! * [`compiler`] — tiling code generator and the VI insertion pass;
//! * [`accel`] — the accelerator engine: timing simulation, bit-exact
//!   functional simulation, the IAU, and four interrupt strategies;
//! * [`runtime`] — ROS-like middleware with deadline accounting;
//! * [`serve`] — multi-core inference serving gateway: priority lanes,
//!   same-network batching, deadline-aware admission, pluggable
//!   placement, bounded-backpressure frontends;
//! * [`cluster`] — the fleet layer over [`serve`]: weight-cache-aware
//!   routing, shed cascades, cross-gateway work stealing and elastic
//!   core-pool scaling across many gateways on one virtual clock;
//! * [`obs`] — deterministic cycle-accurate tracing + metrics with
//!   Perfetto/Chrome-trace, JSON and ASCII exporters;
//! * [`dslam`] — the two-agent distributed-SLAM evaluation application.
//!
//! ## Quickstart
//!
//! ```
//! use inca::accel::{AccelConfig, Engine, InterruptStrategy, TimingBackend};
//! use inca::compiler::Compiler;
//! use inca::isa::TaskSlot;
//! use inca::model::{zoo, Shape3};
//!
//! // Compile a CNN to the interruptible VI-ISA...
//! let cfg = AccelConfig::paper_big();
//! let program = Compiler::new(cfg.arch).compile_vi(&zoo::tiny(Shape3::new(3, 32, 32))?)?;
//!
//! // ...and run it with a preemption mid-flight.
//! let mut engine = Engine::new(cfg, InterruptStrategy::VirtualInstruction, TimingBackend::new());
//! let (hi, lo) = (TaskSlot::new(1)?, TaskSlot::new(3)?);
//! engine.load(hi, program.clone())?;
//! engine.load(lo, program)?;
//! engine.request_at(0, lo)?;
//! engine.request_at(3_000, hi)?;
//! let report = engine.run()?;
//! let interrupt = &report.interrupts[0];
//! println!(
//!     "response latency {:.1} µs, extra cost {:.1} µs",
//!     cfg.cycles_to_us(interrupt.latency()),
//!     cfg.cycles_to_us(interrupt.cost()),
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use inca_accel as accel;
pub use inca_cluster as cluster;
pub use inca_compiler as compiler;
pub use inca_dslam as dslam;
pub use inca_isa as isa;
pub use inca_model as model;
pub use inca_obs as obs;
pub use inca_runtime as runtime;
pub use inca_serve as serve;
