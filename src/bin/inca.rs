//! `inca` — the command-line front end to the INCA toolchain.
//!
//! ```text
//! inca networks                              list the model zoo
//! inca compile resnet18 -o prog.bin          compile to a VI-ISA container
//!      [--arch big|small] [--input C,H,W] [--no-vi]
//! inca stats prog.bin                        program statistics + memory map
//! inca disasm prog.bin [--limit N]           assembly listing
//! inca dot resnet18                          Graphviz DOT of the graph
//! inca run prog.bin [--interrupt-at CYC] [--strategy vi|lbl|cpu|none]
//!                                            timing run (+ Gantt with an interrupt)
//! ```

use std::process::ExitCode;

use inca::accel::{AccelConfig, ArchSpec, Engine, InterruptStrategy, TimingBackend};
use inca::compiler::Compiler;
use inca::isa::{container, Program, TaskSlot};
use inca::model::{zoo, Network, Shape3};

const ZOO: &[&str] = &[
    "tiny",
    "vgg16",
    "superpoint",
    "resnet18",
    "resnet50",
    "resnet101",
    "gem",
    "mobilenet",
    "squeezenet",
];

fn network_by_name(name: &str, input: Shape3) -> Result<Network, String> {
    let r = match name {
        "tiny" => zoo::tiny(input),
        "vgg16" => zoo::vgg16(input, false),
        "superpoint" => zoo::superpoint(Shape3::new(1, input.h, input.w)),
        "resnet18" => zoo::resnet18(input),
        "resnet50" => zoo::resnet50(input),
        "resnet101" => zoo::resnet101(input),
        "gem" => zoo::gem_resnet101(input),
        "mobilenet" => zoo::mobilenet_v1(input),
        "squeezenet" => zoo::squeezenet(input),
        other => return Err(format!("unknown network `{other}`; see `inca networks`")),
    };
    r.map_err(|e| e.to_string())
}

fn parse_shape(s: &str) -> Result<Shape3, String> {
    let parts: Vec<&str> = s.split([',', 'x']).collect();
    if parts.len() != 3 {
        return Err(format!("expected C,H,W, got `{s}`"));
    }
    let mut v = [0u32; 3];
    for (o, p) in v.iter_mut().zip(parts) {
        *o = p.parse().map_err(|_| format!("bad dimension `{p}`"))?;
    }
    Ok(Shape3::new(v[0], v[1], v[2]))
}

fn parse_arch(s: &str) -> Result<ArchSpec, String> {
    match s {
        "big" => Ok(ArchSpec::angel_eye_big()),
        "small" => Ok(ArchSpec::angel_eye_small()),
        other => Err(format!("unknown arch `{other}` (use big|small)")),
    }
}

fn parse_strategy(s: &str) -> Result<InterruptStrategy, String> {
    match s {
        "vi" => Ok(InterruptStrategy::VirtualInstruction),
        "lbl" => Ok(InterruptStrategy::LayerByLayer),
        "cpu" => Ok(InterruptStrategy::CpuLike),
        "none" => Ok(InterruptStrategy::NonPreemptive),
        other => Err(format!("unknown strategy `{other}` (use vi|lbl|cpu|none)")),
    }
}

/// Fetches the value following `--flag`, if present.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn cmd_networks() -> Result<(), String> {
    println!("{:<12} {:>10} {:>12} {:>12}", "network", "layers", "GMACs@480p", "params MB");
    for name in ZOO {
        let input = Shape3::new(3, 480, 640);
        let net = network_by_name(name, input)?;
        let s = net.stats();
        println!(
            "{name:<12} {:>10} {:>12.2} {:>12.2}",
            s.layers,
            s.macs as f64 / 1e9,
            s.param_bytes as f64 / 1e6
        );
    }
    Ok(())
}

fn cmd_compile(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("usage: inca compile <network> -o <file>")?;
    let out = flag_value(args, "-o").ok_or("missing -o <file>")?;
    let arch = parse_arch(flag_value(args, "--arch").unwrap_or("big"))?;
    let input = parse_shape(flag_value(args, "--input").unwrap_or("3,480,640"))?;
    let no_vi = args.iter().any(|a| a == "--no-vi");

    let net = network_by_name(name, input)?;
    let compiler = Compiler::new(arch);
    let program = if no_vi { compiler.compile(&net) } else { compiler.compile_vi(&net) }
        .map_err(|e| e.to_string())?;
    let bytes = container::encode_container(&program);
    std::fs::write(out, &bytes).map_err(|e| e.to_string())?;
    let s = program.stats();
    println!(
        "wrote {out}: {} instructions ({} virtual), {} layers, {} bytes",
        s.instrs,
        s.virtual_instrs,
        s.layers,
        bytes.len()
    );
    Ok(())
}

fn load_container(path: &str) -> Result<Program, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    container::decode_container(&bytes).map_err(|e| e.to_string())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("usage: inca stats <file>")?;
    let p = load_container(path)?;
    let s = p.stats();
    println!("program `{}`", p.name);
    println!("  instructions     : {} ({} virtual)", s.instrs, s.virtual_instrs);
    println!("  CalcBlobs        : {}", s.blobs);
    println!("  interrupt points : {}", s.interrupt_points);
    println!("  layers           : {}", s.layers);
    println!("  MACs             : {:.3} G", s.macs as f64 / 1e9);
    println!("  DDR traffic      : {:.2} MB per pass", s.ddr_bytes as f64 / 1e6);
    let m = &p.memory;
    println!(
        "  memory map       : weights {:#x}+{}, activations {:#x}+{}",
        m.weights_base, m.weights_bytes, m.activations_base, m.activations_bytes
    );
    println!(
        "  input / output   : {:#x}+{} / {:#x}+{}",
        m.input_base, m.input_bytes, m.output_base, m.output_bytes
    );
    Ok(())
}

fn cmd_disasm(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("usage: inca disasm <file> [--limit N]")?;
    let limit: usize = flag_value(args, "--limit")
        .map(|v| v.parse().map_err(|_| format!("bad --limit `{v}`")))
        .transpose()?
        .unwrap_or(200);
    let p = load_container(path)?;
    for line in p.listing().lines().take(limit) {
        println!("{line}");
    }
    if p.len() > limit {
        println!("... ({} more instructions; raise --limit)", p.len() - limit);
    }
    Ok(())
}

fn cmd_dot(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("usage: inca dot <network> [--input C,H,W]")?;
    let input = parse_shape(flag_value(args, "--input").unwrap_or("3,480,640"))?;
    let net = network_by_name(name, input)?;
    print!("{}", net.to_dot());
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("usage: inca run <file> [--interrupt-at CYC] [--strategy S]")?;
    let strategy = parse_strategy(flag_value(args, "--strategy").unwrap_or("vi"))?;
    let interrupt_at: Option<u64> = flag_value(args, "--interrupt-at")
        .map(|v| v.parse().map_err(|_| format!("bad --interrupt-at `{v}`")))
        .transpose()?;
    let program = load_container(path)?;
    let cfg = AccelConfig::paper_big();

    let lo = TaskSlot::new(3).map_err(|e| e.to_string())?;
    let mut engine = Engine::new(cfg, strategy, TimingBackend::new());
    engine.set_profiling(true);
    engine.load(lo, program).map_err(|e| e.to_string())?;
    engine.request_at(0, lo).map_err(|e| e.to_string())?;
    if let Some(at) = interrupt_at {
        // A minimal high-priority requester.
        let hi = TaskSlot::new(1).map_err(|e| e.to_string())?;
        let tiny = Compiler::new(cfg.arch)
            .compile_vi(&zoo::tiny(Shape3::new(3, 16, 16)).map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?;
        engine.load(hi, tiny).map_err(|e| e.to_string())?;
        engine.request_at(at, hi).map_err(|e| e.to_string())?;
    }
    let report = engine.run().map_err(|e| e.to_string())?;
    for job in &report.completed_jobs {
        println!(
            "{}: released @{} cycles, finished @{} ({:.3} ms response, {} preemptions)",
            job.slot,
            job.release,
            job.finish,
            cfg.cycles_to_ms(job.response()),
            job.preemptions
        );
    }
    for ev in &report.interrupts {
        println!(
            "interrupt in layer {}: latency {:.1} µs (t1 {:.1} + t2 {:.1}), cost {:.1} µs",
            ev.layer,
            cfg.cycles_to_us(ev.latency()),
            cfg.cycles_to_us(ev.t1),
            cfg.cycles_to_us(ev.t2),
            cfg.cycles_to_us(ev.cost()),
        );
    }
    if interrupt_at.is_some() {
        println!("\n{}", report.gantt(72));
    }
    Ok(())
}

fn dispatch(cmd: &str, rest: &[String]) -> Result<(), String> {
    match cmd {
        "networks" => cmd_networks(),
        "compile" => cmd_compile(rest),
        "stats" => cmd_stats(rest),
        "disasm" => cmd_disasm(rest),
        "dot" => cmd_dot(rest),
        "run" => cmd_run(rest),
        other => Err(format!("unknown command `{other}`; see the module docs")),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("usage: inca <networks|compile|stats|disasm|dot|run> ...");
        return ExitCode::FAILURE;
    };
    match dispatch(cmd, &args[1..]) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_parsing() {
        assert_eq!(parse_shape("3,480,640").unwrap(), Shape3::new(3, 480, 640));
        assert_eq!(parse_shape("1x32x32").unwrap(), Shape3::new(1, 32, 32));
        assert!(parse_shape("3,480").is_err());
        assert!(parse_shape("a,b,c").is_err());
    }

    #[test]
    fn strategy_and_arch_parsing() {
        assert_eq!(parse_strategy("vi").unwrap(), InterruptStrategy::VirtualInstruction);
        assert_eq!(parse_strategy("none").unwrap(), InterruptStrategy::NonPreemptive);
        assert!(parse_strategy("bogus").is_err());
        assert_eq!(parse_arch("small").unwrap(), ArchSpec::angel_eye_small());
        assert!(parse_arch("huge").is_err());
    }

    #[test]
    fn flag_value_lookup() {
        let args: Vec<String> =
            ["a", "-o", "out.bin", "--limit", "5"].iter().map(ToString::to_string).collect();
        assert_eq!(flag_value(&args, "-o"), Some("out.bin"));
        assert_eq!(flag_value(&args, "--limit"), Some("5"));
        assert_eq!(flag_value(&args, "--missing"), None);
    }

    #[test]
    fn every_zoo_name_resolves() {
        for name in ZOO {
            network_by_name(name, Shape3::new(3, 64, 64)).unwrap();
        }
        assert!(network_by_name("nope", Shape3::new(3, 64, 64)).is_err());
    }

    #[test]
    fn compile_stats_disasm_round_trip_via_files() {
        let dir = std::env::temp_dir().join("inca_cli_test");
        let _ = std::fs::create_dir_all(&dir);
        let out = dir.join("tiny.bin");
        let args: Vec<String> =
            ["tiny", "-o", out.to_str().unwrap(), "--arch", "small", "--input", "3,32,32"]
                .iter()
                .map(ToString::to_string)
                .collect();
        cmd_compile(&args).unwrap();
        let stat_args = vec![out.to_str().unwrap().to_string()];
        cmd_stats(&stat_args).unwrap();
        cmd_disasm(&stat_args).unwrap();
        let p = load_container(out.to_str().unwrap()).unwrap();
        assert!(p.stats().instrs > 0);
        let _ = std::fs::remove_file(&out);
    }
}
